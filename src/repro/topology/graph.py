"""Generic data-center topology wrapper.

A :class:`Topology` is an undirected graph of *hosts* and *switches*
with per-link capacities.  It is immutable after construction — which
devices are powered on is a separate, cheap-to-copy
:class:`ActiveSubnet` overlay, because EPRONS-Network's whole job is to
search over subnets of one fixed physical topology.

Node names are strings.  Links are canonicalized as sorted 2-tuples so
``("a", "b")`` and ``("b", "a")`` refer to the same physical link.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import networkx as nx

from ..errors import ConfigurationError
from ..power.models import LinkPowerModel, SwitchPowerModel

__all__ = ["NodeKind", "Link", "canonical_link", "Topology", "ActiveSubnet"]


class NodeKind:
    """Node role constants stored in the graph's node attributes."""

    HOST = "host"
    EDGE = "edge"
    AGG = "agg"
    CORE = "core"
    SWITCH = "switch"  # generic switch in non-fat-tree topologies

    #: Kinds that count as switches for power accounting.
    SWITCH_KINDS = frozenset({EDGE, AGG, CORE, SWITCH})
    ALL_KINDS = frozenset({HOST, EDGE, AGG, CORE, SWITCH})


Link = tuple[str, str]


def canonical_link(u: str, v: str) -> Link:
    """Return the canonical (sorted) form of an undirected link."""
    return (u, v) if u <= v else (v, u)


class Topology:
    """An immutable host/switch graph with link capacities.

    Parameters
    ----------
    graph:
        An undirected :class:`networkx.Graph` whose nodes carry a
        ``kind`` attribute (one of :class:`NodeKind`) and whose edges
        carry a ``capacity`` attribute in bit/s.
    """

    def __init__(self, graph: nx.Graph):
        if graph.is_directed():
            raise ConfigurationError("Topology requires an undirected graph")
        if graph.number_of_nodes() == 0:
            raise ConfigurationError("Topology must have at least one node")
        for node, data in graph.nodes(data=True):
            kind = data.get("kind")
            if kind not in NodeKind.ALL_KINDS:
                raise ConfigurationError(f"node {node!r} has invalid kind {kind!r}")
        for u, v, data in graph.edges(data=True):
            cap = data.get("capacity")
            if cap is None or cap <= 0:
                raise ConfigurationError(f"link ({u!r}, {v!r}) needs a positive capacity")
        for node, data in graph.nodes(data=True):
            if data["kind"] == NodeKind.HOST and graph.degree(node) != 1:
                raise ConfigurationError(
                    f"host {node!r} must attach to exactly one switch "
                    f"(degree {graph.degree(node)})"
                )
        self._graph = nx.freeze(graph)
        # Node kinds are immutable; a plain dict avoids the networkx
        # attribute-view indirection on the path-enumeration hot path.
        self._kind = {n: d["kind"] for n, d in graph.nodes(data=True)}
        self._hosts = tuple(sorted(n for n, d in graph.nodes(data=True) if d["kind"] == NodeKind.HOST))
        self._switches = tuple(
            sorted(n for n, d in graph.nodes(data=True) if d["kind"] in NodeKind.SWITCH_KINDS)
        )
        self._links = tuple(sorted(canonical_link(u, v) for u, v in graph.edges()))
        self._switches_by_kind: dict[str, tuple[str, ...]] = {}
        self._fingerprint: str | None = None

    # -- structural accessors ------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        """The underlying (frozen) networkx graph."""
        return self._graph

    @property
    def hosts(self) -> tuple[str, ...]:
        """All host nodes, sorted."""
        return self._hosts

    @property
    def switches(self) -> tuple[str, ...]:
        """All switch nodes (any switch kind), sorted."""
        return self._switches

    @property
    def links(self) -> tuple[Link, ...]:
        """All undirected links in canonical form, sorted."""
        return self._links

    @property
    def n_hosts(self) -> int:
        return len(self._hosts)

    @property
    def n_switches(self) -> int:
        return len(self._switches)

    @property
    def n_links(self) -> int:
        return len(self._links)

    def kind(self, node: str) -> str:
        """The :class:`NodeKind` of ``node``."""
        return self._kind[node]

    def is_host(self, node: str) -> bool:
        return self._kind[node] == NodeKind.HOST

    def is_switch(self, node: str) -> bool:
        return self._kind[node] in NodeKind.SWITCH_KINDS

    def switches_of_kind(self, kind: str) -> tuple[str, ...]:
        """All switches of a specific kind (edge/agg/core), sorted."""
        cached = self._switches_by_kind.get(kind)
        if cached is None:
            cached = tuple(n for n in self._switches if self._kind[n] == kind)
            self._switches_by_kind[kind] = cached
        return cached

    def capacity(self, u: str, v: str) -> float:
        """Capacity (bit/s) of the link between ``u`` and ``v``."""
        if not self._graph.has_edge(u, v):
            raise ConfigurationError(f"no link between {u!r} and {v!r}")
        return float(self._graph.edges[u, v]["capacity"])

    def neighbors(self, node: str) -> Iterator[str]:
        return iter(self._graph[node])

    def has_link(self, u: str, v: str) -> bool:
        return self._graph.has_edge(u, v)

    def fingerprint(self) -> str:
        """Content digest of the physical graph (nodes, kinds, capacities).

        Two topologies with equal fingerprints are interchangeable for
        every pure-topology computation — node names, kinds, link set
        and per-link capacities all match — which is what lets compiled
        :class:`~repro.netfast.index.TopologyIndex` instances be shared
        across distinct but content-identical ``Topology`` objects
        (sweep tasks and benchmarks rebuild the same fat-tree over and
        over).  Computed once and cached; the graph is frozen.
        """
        if self._fingerprint is None:
            import hashlib

            h = hashlib.sha256()
            for node in self._hosts:
                h.update(f"h:{node}\0".encode())
            for node in self._switches:
                h.update(f"s:{node}:{self._kind[node]}\0".encode())
            for u, v in self._links:
                h.update(f"l:{u}:{v}:{self.capacity(u, v)!r}\0".encode())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def attachment_switch(self, host: str) -> str:
        """The single switch a host attaches to."""
        if not self.is_host(host):
            raise ConfigurationError(f"{host!r} is not a host")
        return next(iter(self._graph[host]))

    def switch_links(self, switch: str) -> tuple[Link, ...]:
        """All links incident to ``switch``, canonicalized."""
        return tuple(sorted(canonical_link(switch, nbr) for nbr in self._graph[switch]))

    # -- subnet construction --------------------------------------------------

    def full_subnet(self) -> "ActiveSubnet":
        """An :class:`ActiveSubnet` with every device on."""
        return ActiveSubnet(self, frozenset(self._switches), frozenset(self._links))

    def subnet(self, switches_on: Iterable[str], links_on: Iterable[Link]) -> "ActiveSubnet":
        """Build a validated subnet from explicit on-sets."""
        return ActiveSubnet(self, frozenset(switches_on), frozenset(links_on))


@dataclass(frozen=True)
class ActiveSubnet:
    """Which switches/links of a :class:`Topology` are powered on.

    Invariants enforced at construction (matching the LP constraints
    Eq. 7–8 of the paper):

    * a link can only be on if both of its switch endpoints are on
      (host endpoints are always considered powered — servers are never
      turned off in EPRONS);
    * a switch that is on must have at least one on link (otherwise the
      LP would have turned it off);
    * every host's attachment link is on — hosts must stay reachable.
    """

    topology: Topology
    switches_on: frozenset[str]
    links_on: frozenset[Link]

    def __post_init__(self) -> None:
        topo = self.topology
        unknown = self.switches_on - set(topo.switches)
        if unknown:
            raise ConfigurationError(f"unknown switches in subnet: {sorted(unknown)}")
        unknown_links = self.links_on - set(topo.links)
        if unknown_links:
            raise ConfigurationError(f"unknown links in subnet: {sorted(unknown_links)}")
        for u, v in self.links_on:
            for end in (u, v):
                if topo.is_switch(end) and end not in self.switches_on:
                    raise ConfigurationError(
                        f"link ({u!r}, {v!r}) is on but switch {end!r} is off"
                    )
        for sw in self.switches_on:
            if not any(link in self.links_on for link in topo.switch_links(sw)):
                raise ConfigurationError(f"switch {sw!r} is on with no active links")
        for host in topo.hosts:
            att = canonical_link(host, topo.attachment_switch(host))
            if att not in self.links_on:
                raise ConfigurationError(f"host {host!r} attachment link is off")

    # -- accessors -------------------------------------------------------------

    @property
    def n_switches_on(self) -> int:
        return len(self.switches_on)

    @property
    def n_links_on(self) -> int:
        return len(self.links_on)

    def is_switch_on(self, switch: str) -> bool:
        return switch in self.switches_on

    def is_link_on(self, u: str, v: str) -> bool:
        return canonical_link(u, v) in self.links_on

    def active_graph(self) -> nx.Graph:
        """A networkx view containing only powered-on devices (plus hosts)."""
        g = nx.Graph()
        for host in self.topology.hosts:
            g.add_node(host, kind=NodeKind.HOST)
        for sw in self.switches_on:
            g.add_node(sw, kind=self.topology.kind(sw))
        for u, v in self.links_on:
            if u in g and v in g:
                g.add_edge(u, v, capacity=self.topology.capacity(u, v))
        return g

    def connects(self, src: str, dst: str) -> bool:
        """True if ``src`` and ``dst`` are connected in the active subnet."""
        g = self.active_graph()
        return src in g and dst in g and nx.has_path(g, src, dst)

    def connects_all_hosts(self) -> bool:
        """True if every pair of hosts remains mutually reachable."""
        g = self.active_graph()
        hosts = self.topology.hosts
        if not hosts:
            return True
        component = nx.node_connected_component(g, hosts[0])
        return all(h in component for h in hosts)

    # -- power ------------------------------------------------------------------

    def network_power(
        self,
        switch_model: SwitchPowerModel | None = None,
        link_model: LinkPowerModel | None = None,
    ) -> tuple[float, float]:
        """(switch_watts, link_watts) for this subnet.

        Off devices are charged the models' sleep power, matching the
        LP objective which only counts ``X`` / ``Y`` indicator terms.
        """
        switch_model = switch_model or SwitchPowerModel()
        link_model = link_model or LinkPowerModel()
        switch_watts = 0.0
        for sw in self.topology.switches:
            switch_watts += switch_model.power(sw in self.switches_on)
        link_watts = 0.0
        for link in self.topology.links:
            link_watts += link_model.power(link in self.links_on)
        return switch_watts, link_watts

    # -- set algebra --------------------------------------------------------------

    def without(
        self,
        switches: Iterable[str] = (),
        links: Iterable[Link] = (),
    ) -> "ActiveSubnet":
        """Subnet surgery: this subnet with the given devices removed.

        Models device *failure*: the named switches/links go dark, every
        link incident to a removed switch goes with it, and switches
        left with no active link cascade off (the subnet invariant —
        an on switch must have an on link — would reject them anyway).
        Raises :class:`~repro.errors.ConfigurationError` when removal
        would sever a host's attachment link; EPRONS never powers
        servers off, so an edge-switch failure that strands a host is
        outside the model (the fault injector never generates one).
        """
        dead_switches = frozenset(switches) & self.switches_on
        dead_links = {canonical_link(u, v) for u, v in links} & self.links_on
        topo = self.topology
        attachment = {
            canonical_link(h, topo.attachment_switch(h)): h for h in topo.hosts
        }
        switches_on = set(self.switches_on) - dead_switches
        links_on = {
            (u, v)
            for u, v in self.links_on
            if (u, v) not in dead_links
            and u not in dead_switches
            and v not in dead_switches
        }
        for link in (self.links_on - links_on) & set(attachment):
            raise ConfigurationError(
                f"removing link {link} would strand host {attachment[link]!r}"
            )
        # Cascade: a switch whose links all died cannot stay on.
        changed = True
        while changed:
            changed = False
            for sw in sorted(switches_on):
                if not any(link in links_on for link in topo.switch_links(sw)):
                    switches_on.discard(sw)
                    changed = True
        return ActiveSubnet(topo, frozenset(switches_on), frozenset(links_on))

    def union(self, other: "ActiveSubnet") -> "ActiveSubnet":
        """Subnet with the union of both on-sets (same topology)."""
        if other.topology is not self.topology:
            raise ConfigurationError("cannot union subnets of different topologies")
        return ActiveSubnet(
            self.topology,
            self.switches_on | other.switches_on,
            self.links_on | other.links_on,
        )
