"""Data-center network topologies: fat-tree, subnets, aggregation policies."""

from .aggregation import AGGREGATION_LEVELS, aggregation_policy, minimal_subnet
from .fattree import FatTree
from .graph import ActiveSubnet, Link, NodeKind, Topology, canonical_link
from .paths import active_paths, fat_tree_paths, path_links, shortest_paths

__all__ = [
    "Topology",
    "FatTree",
    "ActiveSubnet",
    "NodeKind",
    "Link",
    "canonical_link",
    "aggregation_policy",
    "minimal_subnet",
    "AGGREGATION_LEVELS",
    "fat_tree_paths",
    "active_paths",
    "shortest_paths",
    "path_links",
]
