"""Path enumeration over data-center topologies.

Consolidation needs two views of paths:

* :func:`fat_tree_paths` — all shortest host-to-host paths over the
  *physical* fat-tree, enumerated analytically (no graph search) in a
  deterministic "leftmost" order.  The greedy heuristic walks this
  order so flows pack onto the lowest-indexed devices first, which is
  exactly what makes the unused right-hand side of the tree go dark.
* :func:`active_paths` — shortest paths restricted to an
  :class:`~repro.topology.graph.ActiveSubnet`, for routing under a
  fixed aggregation policy.
"""

from __future__ import annotations

from collections.abc import Iterator

import networkx as nx

from ..errors import ConfigurationError
from .fattree import FatTree
from .graph import ActiveSubnet, Topology, canonical_link

__all__ = ["fat_tree_paths", "active_paths", "path_links", "shortest_paths"]

Path = tuple[str, ...]


def path_links(path: Path) -> tuple[tuple[str, str], ...]:
    """The canonical links traversed by a node path."""
    if len(path) < 2:
        raise ConfigurationError(f"path must have at least two nodes, got {path}")
    return tuple(canonical_link(u, v) for u, v in zip(path[:-1], path[1:]))


def fat_tree_paths(ft: FatTree, src: str, dst: str) -> list[Path]:
    """All shortest paths between two hosts of a fat-tree.

    Enumerated structurally (2, ``k/2`` or ``(k/2)**2`` paths depending
    on whether the hosts share an edge switch, a pod, or nothing), in
    sorted (leftmost-first) order.  Structural enumeration avoids an
    all-shortest-paths graph search per flow, which dominates heuristic
    runtime on larger trees.
    """
    if src == dst:
        raise ConfigurationError("source and destination hosts must differ")
    for h in (src, dst):
        if not ft.is_host(h):
            raise ConfigurationError(f"{h!r} is not a host")
    e_src = ft.attachment_switch(src)
    e_dst = ft.attachment_switch(dst)
    if e_src == e_dst:
        return [(src, e_src, dst)]

    pod_src = ft.pod_of(src)
    pod_dst = ft.pod_of(dst)
    if pod_src == pod_dst:
        return [
            (src, e_src, agg, e_dst, dst)
            for agg in ft.agg_switches_in_pod(pod_src)
        ]

    paths: list[Path] = []
    for g in range(ft.n_core_groups):
        a_src = ft.agg_name(pod_src, g)
        a_dst = ft.agg_name(pod_dst, g)
        for core in ft.cores_in_group(g):
            paths.append((src, e_src, a_src, core, a_dst, e_dst, dst))
    return paths


def active_paths(subnet: ActiveSubnet, src: str, dst: str) -> list[Path]:
    """All shortest paths between ``src`` and ``dst`` over the active
    subnet, sorted deterministically.

    Returns an empty list when the subnet disconnects the pair (the
    caller decides whether that is an error or a trigger to power
    devices back on).
    """
    g = subnet.active_graph()
    if src not in g or dst not in g:
        return []
    try:
        paths = [tuple(p) for p in nx.all_shortest_paths(g, src, dst)]
    except nx.NetworkXNoPath:
        return []
    return sorted(paths)


def shortest_paths(topology: Topology, src: str, dst: str) -> list[Path]:
    """All shortest paths over the full physical topology.

    Generic (graph-search) fallback for non-fat-tree topologies; for a
    :class:`FatTree` prefer :func:`fat_tree_paths`.
    """
    if isinstance(topology, FatTree) and topology.is_host(src) and topology.is_host(dst):
        return fat_tree_paths(topology, src, dst)
    try:
        return sorted(tuple(p) for p in nx.all_shortest_paths(topology.graph, src, dst))
    except nx.NetworkXNoPath:
        return []


def iter_host_pairs(topology: Topology) -> Iterator[tuple[str, str]]:
    """All ordered host pairs (src != dst), sorted."""
    for src in topology.hosts:
        for dst in topology.hosts:
            if src != dst:
                yield src, dst
