"""k-ary fat-tree topology builder (the paper's evaluation platform).

A k-ary fat-tree (k even) has:

* ``k`` pods, each with ``k/2`` edge switches and ``k/2`` aggregation
  switches;
* ``(k/2)**2`` core switches, arranged in ``k/2`` *groups* of ``k/2``;
  every core in group ``g`` connects to aggregation switch ``g`` of
  every pod;
* ``k/2`` hosts per edge switch, i.e. ``k**3 / 4`` hosts total.

The paper uses ``k = 4``: 16 servers, 4 core + 8 aggregation + 8 edge =
20 switches, and 48 links, with 1 Gbps link capacity (Fig. 2).

Node naming (stable, sortable):

=========  =======================  ==========================
Kind       Name                     Example (k=4)
=========  =======================  ==========================
host       ``h{pod}_{edge}_{i}``    ``h0_1_0``
edge       ``e{pod}_{i}``           ``e2_0``
agg        ``a{pod}_{i}``           ``a2_1``
core       ``c{group}_{i}``         ``c1_0``
=========  =======================  ==========================
"""

from __future__ import annotations

import networkx as nx

from ..errors import ConfigurationError
from ..units import GBPS
from .graph import NodeKind, Topology

__all__ = ["FatTree"]


class FatTree(Topology):
    """A k-ary fat-tree :class:`~repro.topology.graph.Topology`.

    Parameters
    ----------
    k:
        Fat-tree arity; must be a positive even integer.
    link_capacity_bps:
        Capacity of every link, in bit/s (default 1 Gbps, as in the
        paper's MiniNet deployment).
    """

    def __init__(self, k: int = 4, link_capacity_bps: float = GBPS):
        if k <= 0 or k % 2 != 0:
            raise ConfigurationError(f"fat-tree arity must be a positive even int, got {k}")
        if link_capacity_bps <= 0:
            raise ConfigurationError("link capacity must be positive")
        self._k = k
        half = k // 2
        g = nx.Graph()

        # Core switches: group g, index i within the group.
        for grp in range(half):
            for i in range(half):
                g.add_node(self.core_name(grp, i), kind=NodeKind.CORE)

        for pod in range(k):
            for i in range(half):
                g.add_node(self.agg_name(pod, i), kind=NodeKind.AGG)
                g.add_node(self.edge_name(pod, i), kind=NodeKind.EDGE)
            # Full bipartite mesh between the pod's edge and agg layers.
            for e in range(half):
                for a in range(half):
                    g.add_edge(
                        self.edge_name(pod, e),
                        self.agg_name(pod, a),
                        capacity=link_capacity_bps,
                    )
            # Aggregation switch ``a`` uplinks to every core in group ``a``.
            for a in range(half):
                for i in range(half):
                    g.add_edge(
                        self.agg_name(pod, a),
                        self.core_name(a, i),
                        capacity=link_capacity_bps,
                    )
            # Hosts under each edge switch.
            for e in range(half):
                for h in range(half):
                    host = self.host_name(pod, e, h)
                    g.add_node(host, kind=NodeKind.HOST)
                    g.add_edge(host, self.edge_name(pod, e), capacity=link_capacity_bps)

        super().__init__(g)
        # Path enumeration asks for these tuples once per flow; memoize.
        self._aggs_in_pod: dict[int, tuple[str, ...]] = {}
        self._cores_in_group: dict[int, tuple[str, ...]] = {}

    # -- naming ------------------------------------------------------------------

    @staticmethod
    def host_name(pod: int, edge: int, index: int) -> str:
        return f"h{pod}_{edge}_{index}"

    @staticmethod
    def edge_name(pod: int, index: int) -> str:
        return f"e{pod}_{index}"

    @staticmethod
    def agg_name(pod: int, index: int) -> str:
        return f"a{pod}_{index}"

    @staticmethod
    def core_name(group: int, index: int) -> str:
        return f"c{group}_{index}"

    # -- structure ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Fat-tree arity."""
        return self._k

    @property
    def n_pods(self) -> int:
        return self._k

    @property
    def n_core_groups(self) -> int:
        return self._k // 2

    def pod_of(self, node: str) -> int:
        """Pod number of a host, edge or agg switch.

        Core switches do not belong to a pod; asking for one raises.
        """
        if node.startswith(("h", "e", "a")) and not node.startswith("c"):
            try:
                return int(node[1:].split("_", 1)[0])
            except ValueError:
                pass
        raise ConfigurationError(f"{node!r} does not belong to a pod")

    def core_group_of(self, core: str) -> int:
        """Group number of a core switch (which agg index it serves)."""
        if not core.startswith("c"):
            raise ConfigurationError(f"{core!r} is not a core switch")
        return int(core[1:].split("_", 1)[0])

    def agg_index_of(self, agg: str) -> int:
        """Index of an aggregation switch within its pod."""
        if not agg.startswith("a"):
            raise ConfigurationError(f"{agg!r} is not an aggregation switch")
        return int(agg.split("_", 1)[1])

    def hosts_in_pod(self, pod: int) -> tuple[str, ...]:
        """All hosts of one pod, sorted."""
        self._check_pod(pod)
        prefix = f"h{pod}_"
        return tuple(h for h in self.hosts if h.startswith(prefix))

    def edge_switches_in_pod(self, pod: int) -> tuple[str, ...]:
        self._check_pod(pod)
        prefix = f"e{pod}_"
        return tuple(s for s in self.switches_of_kind(NodeKind.EDGE) if s.startswith(prefix))

    def agg_switches_in_pod(self, pod: int) -> tuple[str, ...]:
        self._check_pod(pod)
        cached = self._aggs_in_pod.get(pod)
        if cached is None:
            prefix = f"a{pod}_"
            cached = tuple(
                s for s in self.switches_of_kind(NodeKind.AGG) if s.startswith(prefix)
            )
            self._aggs_in_pod[pod] = cached
        return cached

    def cores_in_group(self, group: int) -> tuple[str, ...]:
        if not 0 <= group < self.n_core_groups:
            raise ConfigurationError(f"core group {group} outside [0, {self.n_core_groups})")
        cached = self._cores_in_group.get(group)
        if cached is None:
            prefix = f"c{group}_"
            cached = tuple(
                s for s in self.switches_of_kind(NodeKind.CORE) if s.startswith(prefix)
            )
            self._cores_in_group[group] = cached
        return cached

    def _check_pod(self, pod: int) -> None:
        if not 0 <= pod < self._k:
            raise ConfigurationError(f"pod {pod} outside [0, {self._k})")
