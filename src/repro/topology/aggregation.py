"""Aggregation policies 0–3 (paper Fig. 9).

The paper pre-defines four consolidation "aggregation" levels for the
4-ary fat-tree: from Aggregation 0 (everything on) to Aggregation 3
(the minimal connected subnet), gradually turning off core switches and
the aggregation switches that serve them.  These fixed policies are used
in the sensitivity studies (Fig. 10, Fig. 13); the LP/heuristic
consolidation in :mod:`repro.consolidation` searches the same space
flow-by-flow.

For a k-ary fat-tree the four levels generalize as:

=======  =============================  ===========================
Level    Core switches on               Agg switches on (per pod)
=======  =============================  ===========================
0        all ``(k/2)**2``               all ``k/2``
1        all of group 0, one per other  all ``k/2``
         group
2        group 0 only (``k/2`` cores)   index 0 only
3        one core (``c0_0``)            index 0 only
=======  =============================  ===========================

Edge switches (and host links) always stay on — servers are never
disconnected.  For ``k = 4`` this yields 20 / 19 / 14 / 13 active
switches, reproducing the four topologies of Fig. 9.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .fattree import FatTree
from .graph import ActiveSubnet, NodeKind, canonical_link

__all__ = ["aggregation_policy", "AGGREGATION_LEVELS", "minimal_subnet"]

#: The aggregation levels defined by the paper.
AGGREGATION_LEVELS = (0, 1, 2, 3)


def aggregation_policy(ft: FatTree, level: int) -> ActiveSubnet:
    """The :class:`ActiveSubnet` for aggregation level ``level``.

    Raises :class:`~repro.errors.ConfigurationError` for levels outside
    0–3.
    """
    if level not in AGGREGATION_LEVELS:
        raise ConfigurationError(f"aggregation level must be one of {AGGREGATION_LEVELS}, got {level}")
    half = ft.k // 2

    cores_on: set[str] = set()
    if level == 0:
        cores_on.update(ft.switches_of_kind(NodeKind.CORE))
    elif level == 1:
        cores_on.update(ft.cores_in_group(0))
        for grp in range(1, ft.n_core_groups):
            cores_on.add(ft.cores_in_group(grp)[0])
    elif level == 2:
        cores_on.update(ft.cores_in_group(0))
    else:  # level == 3
        cores_on.add(ft.cores_in_group(0)[0])

    aggs_on: set[str] = set()
    if level in (0, 1):
        aggs_on.update(ft.switches_of_kind(NodeKind.AGG))
    else:
        for pod in range(ft.n_pods):
            aggs_on.add(ft.agg_name(pod, 0))

    edges_on = set(ft.switches_of_kind(NodeKind.EDGE))
    switches_on = cores_on | aggs_on | edges_on

    links_on: set[tuple[str, str]] = set()
    for host in ft.hosts:
        links_on.add(canonical_link(host, ft.attachment_switch(host)))
    for u, v in ft.links:
        if ft.is_host(u) or ft.is_host(v):
            continue
        if u in switches_on and v in switches_on:
            links_on.add(canonical_link(u, v))

    subnet = ActiveSubnet(ft, frozenset(switches_on), frozenset(links_on))
    # Aggregation policies must never disconnect hosts; cheap to check
    # here and catches arity/level combinations that make no sense.
    if not subnet.connects_all_hosts():
        raise ConfigurationError(f"aggregation level {level} disconnects hosts (k={ft.k})")
    return subnet


def minimal_subnet(ft: FatTree) -> ActiveSubnet:
    """The smallest connected subnet (alias for aggregation level 3).

    This is the floor of EPRONS-Network's search space: one core, one
    aggregation switch per pod, every edge switch.
    """
    return aggregation_policy(ft, 3)
