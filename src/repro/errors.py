"""Exception hierarchy for the EPRONS reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from infeasible
optimization instances.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A model or simulation was configured with invalid parameters.

    Raised eagerly at construction time (for example a negative link
    capacity, an empty frequency ladder, or a fat-tree arity that is not
    an even positive integer) so misuse fails fast rather than
    producing silently wrong power numbers.
    """


class InfeasibleError(ReproError):
    """An optimization instance admits no feasible solution.

    EPRONS-Network raises this when the offered traffic cannot be packed
    onto the topology at the requested scale factor — e.g. scale factor
    ``K`` inflates a flow beyond every path's residual capacity, or an
    aggregation policy disconnects a source/destination pair.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state.

    This always indicates a bug (an event scheduled in the past, a
    departure for an idle core, ...) rather than a user error, and is
    used as an internal assertion that produces a diagnosable message.
    """


class SolverError(ReproError):
    """The underlying MILP solver failed for a reason other than
    infeasibility (time limit, numerical failure, unexpected status)."""
