"""Traffic-set construction: the flow populations the experiments route.

Builds the two traffic components of the paper's evaluation:

* **search traffic** — the partition–aggregation pattern: every user
  query fans out from one aggregator host to the other hosts (ISNs) as
  request flows, and the ISNs reply back.  Per-flow bandwidth is small
  (default 20 Mbps, matching Fig. 2's example flows).
* **background traffic** — latency-tolerant elephant flows between
  random host pairs, scaled so aggregate demand hits a target fraction
  of bisection/link capacity (the paper sweeps 1 %–50 %).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..errors import ConfigurationError
from ..rng import ensure_rng
from ..topology.graph import Topology
from ..units import MBPS
from .flow import Flow, FlowClass

__all__ = ["TrafficSet", "search_flows", "background_flows", "combined_traffic"]


class TrafficSet:
    """An ordered, id-unique collection of flows offered to the DCN."""

    def __init__(self, flows=()):
        self._flows: list[Flow] = []
        self._by_id: dict[str, Flow] = {}
        self._demand_arr: np.ndarray | None = None
        self._ls_mask: np.ndarray | None = None
        for f in flows:
            self.add(f)

    def add(self, flow: Flow) -> None:
        if flow.flow_id in self._by_id:
            raise ConfigurationError(f"duplicate flow id {flow.flow_id!r}")
        self._flows.append(flow)
        self._by_id[flow.flow_id] = flow
        self._demand_arr = None
        self._ls_mask = None

    def _arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached (demand, latency-sensitive-mask) arrays in flow order."""
        if self._demand_arr is None:
            self._demand_arr = np.array([f.demand_bps for f in self._flows])
            self._ls_mask = np.array(
                [f.is_latency_sensitive for f in self._flows], dtype=bool
            )
        return self._demand_arr, self._ls_mask

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self):
        return iter(self._flows)

    def __getitem__(self, flow_id: str) -> Flow:
        return self._by_id[flow_id]

    def __contains__(self, flow_id: str) -> bool:
        return flow_id in self._by_id

    @property
    def flows(self) -> tuple[Flow, ...]:
        return tuple(self._flows)

    @property
    def latency_sensitive(self) -> tuple[Flow, ...]:
        return tuple(f for f in self._flows if f.is_latency_sensitive)

    @property
    def latency_tolerant(self) -> tuple[Flow, ...]:
        return tuple(f for f in self._flows if not f.is_latency_sensitive)

    def total_demand_bps(self) -> float:
        demand, _ = self._arrays()
        return float(demand.sum())

    def total_reserved_bps(self, scale_factor: float) -> float:
        """Total link reservation at scale factor ``K``."""
        demand, ls = self._arrays()
        if demand.size and scale_factor < 1.0:
            raise ConfigurationError(f"scale factor must be >= 1, got {scale_factor}")
        return float(np.where(ls, scale_factor * demand, demand).sum())

    def merged_with(self, other: "TrafficSet") -> "TrafficSet":
        return TrafficSet(list(self._flows) + list(other.flows))


def search_flows(
    topology: Topology,
    aggregator: str,
    demand_bps: float = 20 * MBPS,
    deadline_s: float = 5e-3,
    include_replies: bool = True,
) -> TrafficSet:
    """Partition–aggregation search traffic rooted at ``aggregator``.

    One latency-sensitive request flow from the aggregator to every
    other host, and (optionally) one reply flow back.  Default 20 Mbps
    per flow and 5 ms network budget, the paper's running example.
    """
    if aggregator not in topology.hosts:
        raise ConfigurationError(f"aggregator {aggregator!r} is not a host")
    ts = TrafficSet()
    for host in topology.hosts:
        if host == aggregator:
            continue
        ts.add(
            Flow(
                flow_id=f"req:{aggregator}->{host}",
                src=aggregator,
                dst=host,
                demand_bps=demand_bps,
                flow_class=FlowClass.LATENCY_SENSITIVE,
                deadline_s=deadline_s,
            )
        )
        if include_replies:
            ts.add(
                Flow(
                    flow_id=f"rep:{host}->{aggregator}",
                    src=host,
                    dst=aggregator,
                    demand_bps=demand_bps,
                    flow_class=FlowClass.LATENCY_SENSITIVE,
                    deadline_s=deadline_s,
                )
            )
    return ts


def background_flows(
    topology: Topology,
    utilization: float,
    n_flows: int | None = None,
    seed_or_rng=None,
) -> TrafficSet:
    """Latency-tolerant elephants targeting a link-utilization level.

    ``utilization`` is the target fraction of host-uplink capacity
    consumed by background traffic (the paper's "background traffic at
    X % of link capacity").  Each of ``n_flows`` elephants (default:
    one per host) runs between a distinct random source and a random
    destination, sized so the *mean source uplink* carries the target
    utilization.
    """
    if not 0.0 <= utilization < 1.0:
        raise ConfigurationError(f"utilization {utilization} outside [0, 1)")
    rng = ensure_rng(seed_or_rng)
    hosts = list(topology.hosts)
    if len(hosts) < 2:
        raise ConfigurationError("background traffic needs at least two hosts")
    if n_flows is None:
        n_flows = len(hosts)
    if n_flows < 0:
        raise ConfigurationError(f"n_flows must be non-negative, got {n_flows}")

    ts = TrafficSet()
    if n_flows == 0 or utilization == 0.0:
        return ts

    # Each source uplink should carry `utilization * capacity`; spread
    # sources round-robin so no uplink is double-loaded beyond target.
    # Destinations follow a random *derangement* of the host list so
    # each host also receives the target utilization on its downlink —
    # two elephants colliding on one access link would make the offered
    # load physically unroutable at high utilization.
    srcs = [hosts[i % len(hosts)] for i in range(n_flows)]
    flows_per_src = Counter(srcs)
    dst_cycle = _derangement(hosts, rng)
    dst_of = dict(zip(hosts, dst_cycle))
    for i, src in enumerate(srcs):
        uplink_cap = topology.capacity(src, topology.attachment_switch(src))
        demand = utilization * uplink_cap / flows_per_src[src]
        dst = dst_of[src]
        ts.add(
            Flow(
                flow_id=f"bg:{i}:{src}->{dst}",
                src=src,
                dst=dst,
                demand_bps=demand,
                flow_class=FlowClass.LATENCY_TOLERANT,
            )
        )
    return ts


def _derangement(items, rng) -> list[str]:
    """A random permutation of ``items`` with no fixed points.

    Fisher–Yates followed by fixing residual self-mappings by swapping
    with a neighbour (always possible for two or more items).
    """
    n = len(items)
    perm = list(rng.permutation(n))
    for i in range(n):
        if perm[i] == i:
            j = (i + 1) % n
            perm[i], perm[j] = perm[j], perm[i]
    return [items[p] for p in perm]


def combined_traffic(
    topology: Topology,
    aggregator: str,
    background_utilization: float,
    query_demand_bps: float = 20 * MBPS,
    deadline_s: float = 5e-3,
    seed_or_rng=None,
) -> TrafficSet:
    """Search traffic plus background elephants — the paper's mix."""
    search = search_flows(
        topology, aggregator, demand_bps=query_demand_bps, deadline_s=deadline_s
    )
    bg = background_flows(topology, background_utilization, seed_or_rng=seed_or_rng)
    return search.merged_with(bg)
