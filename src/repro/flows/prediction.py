"""Bandwidth-demand prediction (paper Section II, step i).

Traffic consolidation runs on *predicted* next-epoch demands: "the 90th
percentile traffic data rate of the last epoch is used to predict the
flow's bandwidth demand in the next epoch", and a safety margin on link
capacity absorbs prediction error.

:class:`PercentilePredictor` implements exactly that; the safety margin
lives here too (:func:`usable_capacity`) so both the MILP and the
heuristic apply the same headroom.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..stats import percentile

__all__ = ["PercentilePredictor", "EpochStats", "usable_capacity", "DEFAULT_SAFETY_MARGIN_BPS"]

#: The paper's example safety margin: 50 Mbps on 1 Gbps links (Fig. 2).
DEFAULT_SAFETY_MARGIN_BPS = 50e6


def usable_capacity(capacity_bps: float, safety_margin_bps: float = DEFAULT_SAFETY_MARGIN_BPS) -> float:
    """Link capacity available to reserved flows after the safety margin.

    Raises if the margin consumes the entire link — a misconfiguration
    that would make every instance infeasible.
    """
    if capacity_bps <= 0:
        raise ConfigurationError("capacity must be positive")
    if safety_margin_bps < 0:
        raise ConfigurationError("safety margin must be non-negative")
    usable = capacity_bps - safety_margin_bps
    if usable <= 0:
        raise ConfigurationError(
            f"safety margin {safety_margin_bps} leaves no usable capacity on a "
            f"{capacity_bps} bit/s link"
        )
    return usable


class PercentilePredictor:
    """Predicts next-epoch demand as a percentile of recent samples.

    Rate samples (bit/s) are fed in as they are observed (the SDN
    controller polls flow counters every 2 s); :meth:`predict` returns
    the chosen percentile over the last epoch's samples.

    Polls that produced *no* sample (a dropped OpenFlow stats reply)
    are recorded via :meth:`record_gap` — they occupy a slot in the
    observation window without contributing a value, so
    :attr:`gap_fraction` measures how blind the predictor currently is.
    A dropped poll is **not** a zero-demand sample: treating it as one
    is exactly the silent under-reservation this accounting prevents.

    Parameters
    ----------
    q:
        Percentile to use (default 90, per the paper).
    window:
        Number of most-recent polls forming "the last epoch".
    """

    def __init__(self, q: float = 90.0, window: int = 300):
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile q={q} outside [0, 100]")
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        self.q = q
        self.window = window
        self._samples: deque[float] = deque(maxlen=window)
        #: One entry per poll in the window: True = delivered, False = gap.
        self._polls: deque[bool] = deque(maxlen=window)
        self.total_gaps = 0

    def _push_poll(self, delivered: bool) -> None:
        """Slide the poll window by one entry.

        The window is over *polls*, not samples: when a full window
        slides past a delivered poll, that poll's sample leaves with it
        — otherwise a flow blinded by gaps would keep predicting from
        arbitrarily old data forever, and its sample count could never
        reach the "whole window lost" state the monitor's last-good
        fallback exists for.
        """
        if len(self._polls) == self.window and self._polls[0] and self._samples:
            self._samples.popleft()
        self._polls.append(delivered)

    def observe(self, rate_bps: float) -> None:
        """Record one observed data-rate sample."""
        if rate_bps < 0:
            raise ConfigurationError(f"rate must be non-negative, got {rate_bps}")
        self._push_poll(True)
        self._samples.append(float(rate_bps))

    def observe_many(self, rates_bps) -> None:
        """Record a batch of observed data-rate samples."""
        arr = np.asarray(rates_bps, dtype=float).ravel()
        if np.any(arr < 0):
            raise ConfigurationError("rates must be non-negative")
        for r in arr:
            self._push_poll(True)
            self._samples.append(float(r))

    def record_gap(self) -> None:
        """Record one poll whose stats reply never arrived."""
        self._push_poll(False)
        self.total_gaps += 1

    @property
    def n_samples(self) -> int:
        return len(self._samples)

    @property
    def n_gaps(self) -> int:
        """Gap polls inside the current window."""
        return sum(1 for delivered in self._polls if not delivered)

    @property
    def gap_fraction(self) -> float:
        """Fraction of the window's polls that produced no sample."""
        if not self._polls:
            return 0.0
        return self.n_gaps / len(self._polls)

    def window_mean(self) -> float:
        """Mean of the delivered samples in the window — the *measured*
        load (no percentile headroom), used by admission replays.

        Raises like :meth:`predict` when nothing was delivered.
        """
        if not self._samples:
            raise ConfigurationError("window_mean() with no delivered samples")
        return float(np.mean(self._samples))

    def predict(self) -> float:
        """Predicted next-epoch demand (bit/s).

        Raises :class:`~repro.errors.ConfigurationError` when no sample
        is available — whether the flow was never polled or every poll
        in the window was dropped.  Consolidating on a guessed (or
        implicit-zero) demand is how flows end up on saturated links;
        callers must handle the miss explicitly
        (:meth:`~repro.control.monitor.TrafficMonitor.predicted_traffic`
        falls back to the last good epoch's prediction).
        """
        if not self._samples:
            raise ConfigurationError("predict() with no delivered samples")
        return percentile(list(self._samples), self.q)

    def reset(self) -> None:
        """Drop history (e.g. after a flow is rerouted)."""
        self._samples.clear()
        self._polls.clear()


@dataclass(frozen=True)
class EpochStats:
    """Aggregate per-epoch traffic statistics reported by the monitor."""

    epoch: int
    n_flows: int
    total_demand_bps: float
    peak_demand_bps: float

    def __post_init__(self) -> None:
        if self.epoch < 0 or self.n_flows < 0:
            raise ConfigurationError("epoch and n_flows must be non-negative")
        if self.total_demand_bps < 0 or self.peak_demand_bps < 0:
            raise ConfigurationError("demands must be non-negative")
        if self.peak_demand_bps > self.total_demand_bps and self.n_flows > 0:
            raise ConfigurationError("peak demand cannot exceed total demand")
