"""Bandwidth-demand prediction (paper Section II, step i).

Traffic consolidation runs on *predicted* next-epoch demands: "the 90th
percentile traffic data rate of the last epoch is used to predict the
flow's bandwidth demand in the next epoch", and a safety margin on link
capacity absorbs prediction error.

:class:`PercentilePredictor` implements exactly that; the safety margin
lives here too (:func:`usable_capacity`) so both the MILP and the
heuristic apply the same headroom.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..stats import percentile

__all__ = ["PercentilePredictor", "EpochStats", "usable_capacity", "DEFAULT_SAFETY_MARGIN_BPS"]

#: The paper's example safety margin: 50 Mbps on 1 Gbps links (Fig. 2).
DEFAULT_SAFETY_MARGIN_BPS = 50e6


def usable_capacity(capacity_bps: float, safety_margin_bps: float = DEFAULT_SAFETY_MARGIN_BPS) -> float:
    """Link capacity available to reserved flows after the safety margin.

    Raises if the margin consumes the entire link — a misconfiguration
    that would make every instance infeasible.
    """
    if capacity_bps <= 0:
        raise ConfigurationError("capacity must be positive")
    if safety_margin_bps < 0:
        raise ConfigurationError("safety margin must be non-negative")
    usable = capacity_bps - safety_margin_bps
    if usable <= 0:
        raise ConfigurationError(
            f"safety margin {safety_margin_bps} leaves no usable capacity on a "
            f"{capacity_bps} bit/s link"
        )
    return usable


class PercentilePredictor:
    """Predicts next-epoch demand as a percentile of recent samples.

    Rate samples (bit/s) are fed in as they are observed (the SDN
    controller polls flow counters every 2 s); :meth:`predict` returns
    the chosen percentile over the last epoch's samples.

    Parameters
    ----------
    q:
        Percentile to use (default 90, per the paper).
    window:
        Number of most-recent samples forming "the last epoch".
    """

    def __init__(self, q: float = 90.0, window: int = 300):
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile q={q} outside [0, 100]")
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        self.q = q
        self.window = window
        self._samples: deque[float] = deque(maxlen=window)

    def observe(self, rate_bps: float) -> None:
        """Record one observed data-rate sample."""
        if rate_bps < 0:
            raise ConfigurationError(f"rate must be non-negative, got {rate_bps}")
        self._samples.append(float(rate_bps))

    def observe_many(self, rates_bps) -> None:
        """Record a batch of observed data-rate samples."""
        arr = np.asarray(rates_bps, dtype=float).ravel()
        if np.any(arr < 0):
            raise ConfigurationError("rates must be non-negative")
        for r in arr:
            self._samples.append(float(r))

    @property
    def n_samples(self) -> int:
        return len(self._samples)

    def predict(self) -> float:
        """Predicted next-epoch demand (bit/s).

        Raises when no samples have been observed — consolidating on a
        guessed demand is how flows end up on saturated links.
        """
        if not self._samples:
            raise ConfigurationError("predict() before any observations")
        return percentile(list(self._samples), self.q)

    def reset(self) -> None:
        """Drop history (e.g. after a flow is rerouted)."""
        self._samples.clear()


@dataclass(frozen=True)
class EpochStats:
    """Aggregate per-epoch traffic statistics reported by the monitor."""

    epoch: int
    n_flows: int
    total_demand_bps: float
    peak_demand_bps: float

    def __post_init__(self) -> None:
        if self.epoch < 0 or self.n_flows < 0:
            raise ConfigurationError("epoch and n_flows must be non-negative")
        if self.total_demand_bps < 0 or self.peak_demand_bps < 0:
            raise ConfigurationError("demands must be non-negative")
        if self.peak_demand_bps > self.total_demand_bps and self.n_flows > 0:
            raise ConfigurationError("peak demand cannot exceed total demand")
