"""Flow churn: an evolving background-flow population.

The paper re-optimizes every 10 minutes because "bursty data center
traffic" changes between epochs — flows come and go and their rates
drift.  :class:`FlowChurnModel` generates that dynamic: a population of
latency-tolerant elephants where, each epoch,

* every flow survives with probability ``1 - 1/mean_lifetime_epochs``;
* departed flows are replaced by fresh ones (new random endpoints);
* every surviving flow's demand performs a bounded multiplicative
  random walk around the epoch's target utilization.

The model preserves flow identity across epochs so the controller's
per-flow demand predictors keep their history for surviving flows.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..rng import ensure_rng
from ..topology.graph import Topology
from .flow import Flow, FlowClass
from .traffic import TrafficSet

__all__ = ["FlowChurnModel"]


class FlowChurnModel:
    """Evolves background elephants across controller epochs."""

    def __init__(
        self,
        topology: Topology,
        n_flows: int | None = None,
        mean_lifetime_epochs: float = 4.0,
        demand_jitter: float = 0.15,
        max_demand_fraction: float = 0.75,
        flows_per_host: float = 1.0,
        seed_or_rng=None,
    ):
        if mean_lifetime_epochs < 1.0:
            raise ConfigurationError("mean lifetime must be >= 1 epoch")
        if not 0.0 <= demand_jitter < 1.0:
            raise ConfigurationError("demand jitter must lie in [0, 1)")
        if not 0.0 < max_demand_fraction <= 1.0:
            raise ConfigurationError("max demand fraction must lie in (0, 1]")
        if flows_per_host <= 0.0:
            raise ConfigurationError(f"flows_per_host must be > 0, got {flows_per_host}")
        hosts = list(topology.hosts)
        if len(hosts) < 2:
            raise ConfigurationError("flow churn needs at least two hosts")
        self.topology = topology
        #: Population density when ``n_flows`` is not given explicitly:
        #: the population is sized at ``round(n_hosts * flows_per_host)``
        #: (at least 1).  The default of 1.0 keeps the historical
        #: one-elephant-per-host sizing — and every golden hash — intact;
        #: raising it stresses the delta engine and the rule differ with
        #: denser churn.
        self.flows_per_host = flows_per_host
        self.n_flows = (
            n_flows if n_flows is not None else max(1, round(len(hosts) * flows_per_host))
        )
        if self.n_flows <= 0:
            raise ConfigurationError("n_flows must be positive")
        self.mean_lifetime_epochs = mean_lifetime_epochs
        self.demand_jitter = demand_jitter
        #: Per-flow demand ceiling as a fraction of access capacity —
        #: an elephant must always leave room on its access link for
        #: the latency-sensitive mice sharing it (a flow pinning its
        #: host's uplink would make the instance unroutable).
        self.max_demand_fraction = max_demand_fraction
        self._rng = ensure_rng(seed_or_rng)
        self._hosts = hosts
        self._epoch = 0
        self._next_id = 0
        self._flows: dict[str, Flow] = {}
        self.births = 0
        self.deaths = 0

    @property
    def epoch(self) -> int:
        return self._epoch

    def _endpoint_loads(self) -> tuple[dict[str, int], dict[str, int]]:
        src_load = {h: 0 for h in self._hosts}
        dst_load = {h: 0 for h in self._hosts}
        for flow in self._flows.values():
            src_load[flow.src] += 1
            dst_load[flow.dst] += 1
        return src_load, dst_load

    def _new_flow(self, demand_bps: float) -> Flow:
        # Balance endpoints: new flows spawn at the least-loaded source
        # and destination access links (randomized among ties) so the
        # population stays physically routable at high utilization —
        # two elephants stacked on one host downlink are unroutable.
        src_load, dst_load = self._endpoint_loads()

        def pick(load: dict[str, int], exclude: str | None = None) -> str:
            candidates = [h for h in self._hosts if h != exclude]
            low = min(load[h] for h in candidates)
            pool = [h for h in candidates if load[h] == low]
            return pool[int(self._rng.integers(len(pool)))]

        src = pick(src_load)
        dst = pick(dst_load, exclude=src)
        fid = f"bgflow:{self._next_id}"
        self._next_id += 1
        self.births += 1
        return Flow(fid, src, dst, demand_bps, FlowClass.LATENCY_TOLERANT)

    def _access_capacity(self) -> float:
        return self.topology.capacity(
            self._hosts[0], self.topology.attachment_switch(self._hosts[0])
        )

    def _target_demand(self, utilization: float) -> float:
        # Same sizing rule as background_flows: the population should
        # load the average access link to the target utilization.
        per_flow = utilization * self._access_capacity() * len(self._hosts) / self.n_flows
        return max(per_flow, 1.0)

    def _clip_demand(self, demand: float, target: float) -> float:
        ceiling = self.max_demand_fraction * self._access_capacity()
        return float(np.clip(demand, min(0.5 * target, ceiling), min(1.5 * target, ceiling)))

    def advance(self, utilization: float) -> TrafficSet:
        """One epoch step: churn, drift, and return the new population.

        ``utilization`` is the epoch's target background level (e.g.
        from the diurnal trace).
        """
        if not 0.0 <= utilization < 1.0:
            raise ConfigurationError(f"utilization {utilization} outside [0, 1)")
        target = self._target_demand(utilization)
        death_p = 1.0 / self.mean_lifetime_epochs

        survivors: dict[str, Flow] = {}
        for fid, flow in self._flows.items():
            if self._rng.random() < death_p:
                self.deaths += 1
                continue
            # Multiplicative drift, pulled toward the epoch target and
            # clipped to a sane band around it.
            drift = float(
                np.exp(self._rng.normal(0.0, self.demand_jitter))
            )
            survivors[fid] = flow.with_demand(
                self._clip_demand(flow.demand_bps * drift, target)
            )

        # Commit survivors first so endpoint balancing for replacements
        # sees the current population (including flows added this epoch).
        self._flows = survivors
        while len(self._flows) < self.n_flows:
            jitter = float(np.exp(self._rng.normal(0.0, self.demand_jitter)))
            flow = self._new_flow(self._clip_demand(target * jitter, target))
            self._flows[flow.flow_id] = flow

        self._epoch += 1
        return TrafficSet(sorted(self._flows.values(), key=lambda f: f.flow_id))
