"""Flow model, demand prediction and traffic-set construction."""

from .dynamics import FlowChurnModel
from .flow import Flow, FlowClass
from .prediction import (
    DEFAULT_SAFETY_MARGIN_BPS,
    EpochStats,
    PercentilePredictor,
    usable_capacity,
)
from .traffic import TrafficSet, background_flows, combined_traffic, search_flows

__all__ = [
    "Flow",
    "FlowClass",
    "FlowChurnModel",
    "TrafficSet",
    "search_flows",
    "background_flows",
    "combined_traffic",
    "PercentilePredictor",
    "EpochStats",
    "usable_capacity",
    "DEFAULT_SAFETY_MARGIN_BPS",
]
