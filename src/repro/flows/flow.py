"""Flow model.

The paper's DCN carries two flow classes (Section II):

* **latency-sensitive** query traffic — the request/reply "mice" of the
  partition–aggregation search application, small bandwidth demands but
  strict deadlines;
* **latency-tolerant** background "elephant" flows — bulk transfers
  with only a bandwidth requirement.

Latency-aware consolidation inflates the *reserved* bandwidth of
latency-sensitive flows by the scale factor ``K`` (their actual data
rate is unchanged); latency-tolerant flows are reserved at their
predicted demand.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError

__all__ = ["Flow", "FlowClass"]


class FlowClass:
    """Flow classes, per Section II of the paper."""

    LATENCY_SENSITIVE = "latency_sensitive"
    LATENCY_TOLERANT = "latency_tolerant"

    ALL = frozenset({LATENCY_SENSITIVE, LATENCY_TOLERANT})


@dataclass(frozen=True)
class Flow:
    """One unidirectional flow between two hosts.

    Parameters
    ----------
    flow_id:
        Unique identifier (used to key routing decisions).
    src, dst:
        Host node names; must differ.
    demand_bps:
        Predicted bandwidth demand in bit/s (already including the 90th
        percentile prediction; see :mod:`repro.flows.prediction`).
    flow_class:
        :class:`FlowClass` value.
    deadline_s:
        Network-latency deadline in seconds.  Only meaningful for
        latency-sensitive flows; ``None`` for latency-tolerant ones.
    """

    flow_id: str
    src: str
    dst: str
    demand_bps: float
    flow_class: str = FlowClass.LATENCY_SENSITIVE
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if not self.flow_id:
            raise ConfigurationError("flow_id must be non-empty")
        if self.src == self.dst:
            raise ConfigurationError(f"flow {self.flow_id!r}: src == dst ({self.src!r})")
        if self.demand_bps <= 0:
            raise ConfigurationError(
                f"flow {self.flow_id!r}: demand must be positive, got {self.demand_bps}"
            )
        if self.flow_class not in FlowClass.ALL:
            raise ConfigurationError(
                f"flow {self.flow_id!r}: invalid class {self.flow_class!r}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"flow {self.flow_id!r}: deadline must be positive, got {self.deadline_s}"
            )
        if self.flow_class == FlowClass.LATENCY_TOLERANT and self.deadline_s is not None:
            raise ConfigurationError(
                f"flow {self.flow_id!r}: latency-tolerant flows have no deadline"
            )

    @property
    def is_latency_sensitive(self) -> bool:
        return self.flow_class == FlowClass.LATENCY_SENSITIVE

    def reserved_bps(self, scale_factor: float) -> float:
        """Bandwidth reserved on links for this flow at scale factor ``K``.

        Latency-sensitive flows reserve ``K * demand`` (Section II);
        latency-tolerant flows reserve their plain demand.
        """
        if scale_factor < 1.0:
            raise ConfigurationError(f"scale factor must be >= 1, got {scale_factor}")
        if self.is_latency_sensitive:
            return scale_factor * self.demand_bps
        return self.demand_bps

    def with_demand(self, demand_bps: float) -> "Flow":
        """A copy of this flow with an updated demand prediction."""
        return replace(self, demand_bps=demand_bps)
