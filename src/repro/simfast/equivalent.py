"""Incremental equivalent-queue state for tabulated governors.

The reference :class:`~repro.policies.vp_common.EquivalentQueue` is
rebuilt from a :class:`~repro.policies.base.QueueSnapshot` at every
decision instant — the core materialises deadline tuples, the governor
re-derives fold counts, and both are discarded one decision later.

:class:`IncrementalEquivalentQueue` keeps that state alive between
decisions: a growable float64 deadline array mirroring the core's
waiting queue (FIFO append or EDF sorted insert) plus the in-service
request's deadline, updated on *single* enqueue/dequeue transitions.
Fold counts never need storing — they are positional (the ``i``-th
waiting request always folds ``i + 1`` service draws, shifting down by
exactly one on service start), so the mirror is just the deadline
vector the table engine consumes.

Invariants (enforced by the core simulator's update discipline):

* the queued segment holds ``queue[i].governor_deadline`` in queue
  order — identical to the tuple the reference snapshot would build;
* for EDF governors the segment is non-decreasing, and ties keep
  arrival order (``searchsorted side="right"`` matches the core's
  stable ``(deadline, rid)`` sort because rids are assigned in arrival
  order);
* ``in_service_deadline`` is ``None`` exactly when the core is idle.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError

__all__ = ["IncrementalEquivalentQueue"]

_INITIAL_CAPACITY = 64


class IncrementalEquivalentQueue:
    """Deadline mirror of one core's queue, cheap to update and read."""

    __slots__ = ("_deadlines", "_start", "_end", "in_service_deadline")

    def __init__(self) -> None:
        self._deadlines = np.empty(_INITIAL_CAPACITY)
        self._start = 0
        self._end = 0
        self.in_service_deadline: float | None = None

    # -- state ---------------------------------------------------------------------

    @property
    def n_queued(self) -> int:
        return self._end - self._start

    @property
    def n_in_system(self) -> int:
        return self.n_queued + (0 if self.in_service_deadline is None else 1)

    def queued_deadlines(self) -> np.ndarray:
        """The waiting deadlines in queue order (live view — copy to keep)."""
        return self._deadlines[self._start : self._end]

    def clear(self) -> None:
        self._start = 0
        self._end = 0
        self.in_service_deadline = None

    # -- transitions ---------------------------------------------------------------

    def enqueue(self, deadline: float) -> None:
        """FIFO arrival: append at the tail."""
        if self._end == self._deadlines.size:
            self._compact_or_grow()
        self._deadlines[self._end] = deadline
        self._end += 1

    def enqueue_sorted(self, deadline: float) -> None:
        """EDF arrival: insert keeping deadlines non-decreasing, after
        any equal deadlines (ties stay in arrival order)."""
        if self._end == self._deadlines.size:
            self._compact_or_grow()
        d = self._deadlines
        pos = self._start + int(
            np.searchsorted(d[self._start : self._end], deadline, side="right")
        )
        d[pos + 1 : self._end + 1] = d[pos : self._end]
        d[pos] = deadline
        self._end += 1

    def start_service(self) -> None:
        """The queue head moves into service."""
        if self.in_service_deadline is not None:
            raise SimulationError("mirror started service while busy")
        if self.n_queued == 0:
            raise SimulationError("mirror started service with an empty queue")
        self.in_service_deadline = float(self._deadlines[self._start])
        self._start += 1

    def end_service(self) -> None:
        """The in-service request departed."""
        if self.in_service_deadline is None:
            raise SimulationError("mirror ended service while idle")
        self.in_service_deadline = None
        if self._start == self._end:
            self._start = 0
            self._end = 0

    # -- reads ---------------------------------------------------------------------

    def deltas(self, now: float) -> np.ndarray:
        """``deadline - now`` for the in-service request (first, when
        present) and every waiting request — the exact vector
        :meth:`VPTableEngine.decide` expects."""
        n_queued = self._end - self._start
        if self.in_service_deadline is None:
            out = np.empty(n_queued)
            np.subtract(self._deadlines[self._start : self._end], now, out=out)
            return out
        out = np.empty(1 + n_queued)
        out[0] = self.in_service_deadline - now
        np.subtract(self._deadlines[self._start : self._end], now, out=out[1:])
        return out

    # -- internals -----------------------------------------------------------------

    def _compact_or_grow(self) -> None:
        n = self._end - self._start
        if self._start >= n:
            # At least half the buffer is dead space: slide left.
            self._deadlines[:n] = self._deadlines[self._start : self._end]
        else:
            grown = np.empty(max(2 * self._deadlines.size, _INITIAL_CAPACITY))
            grown[:n] = self._deadlines[self._start : self._end]
            self._deadlines = grown
        self._start = 0
        self._end = n
