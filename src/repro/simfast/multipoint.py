"""Lockstep multi-point DES: one event loop, a whole constraint grid.

Grid points of a server sweep (constraint × governor at one load) share
the workload trace — the same Poisson arrivals, service draws, network
latencies and dispatch decisions — and differ only in deadline budgets
and DVFS policy.  Replaying a separate event loop per point therefore
re-executes identical event sequences that diverge only where a
governor's *decision* differs.

``run_multipoint_simulation`` exploits that: it extracts the shared
trace once (replicating :func:`~repro.sim.runner.run_server_simulation`'s
RNG consumption draw for draw), precomputes per-point deadline matrices,
and advances *point groups* in lockstep — one queue mirror per group
whose per-point state is a ``(n_points, queue)`` float matrix, decided
by one batched :meth:`~repro.simfast.tables.VPTableEngine.decide_batch`
CCDF gather over all points × all ladder rungs at once.

Two mechanisms keep the group structure proportional to actual
divergence rather than to the grid size:

* **copy-on-diverge** — a group forks only when points stop agreeing
  on the event ordering: a differing EDF insert position, or a
  differing chosen frequency (which shifts the completion time);
* **merge-at-idle** — a fork's divergence is transient (it only lives
  as long as the affected busy period), so groups re-merge as soon as
  they are idle waiting for the same arrival.  Energy/busy/frequency
  residency are per-point accumulator vectors — pure outputs that
  never feed back into the dynamics — which makes "idle before
  arrival ``k``" a complete dynamics state and the merge exact.  The
  per-core driver advances the group with the smallest next-arrival
  index first, so no merge opportunity is ever missed.

The hard contract is bit-identical per-point results: every float op
below mirrors the scalar simulator's op order (see
``tests/test_multipoint.py``).  Points the lockstep engine cannot
represent (feedback governors with timers or completion hooks, sleep
models, JSQ dispatch) transparently fall back to scalar
``engine="tabulated"`` runs — correct, just not accelerated.

Tie-breaking: an arrival and a completion landing on the *exact* same
float timestamp fire completion-first here.  In the scalar loop the
ordering follows heap sequence numbers and is completion-first in every
reachable schedule except a measure-zero float coincidence (a
completion rescheduled by an unrelated core event colliding bitwise
with a pre-scheduled arrival), which fixed-seed equivalence tests
would surface.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import ensure_rng, spawn
from ..server.service import ServiceModel
from ..stats import LatencySummary

__all__ = ["MultipointPoint", "run_multipoint_simulation"]

_INF = float("inf")

#: ``ServerSimConfig`` fields every lockstep point must agree on — they
#: shape the shared trace (or the meters' time base), not the policy.
_SHARED_FIELDS = (
    "utilization",
    "network_budget_s",
    "n_cores",
    "duration_s",
    "warmup_s",
    "seed",
    "dispatch",
)


@dataclass(frozen=True)
class MultipointPoint:
    """One grid point of a lockstep run.

    ``governor_factory()`` must be stateless (return an equivalent
    fresh governor on every call): the engine probes one instance for
    classification and may call the factory again on the scalar
    fallback path.
    """

    config: object  # ServerSimConfig (imported lazily to avoid a cycle)
    governor_factory: object
    governor_name: str | None = None


@dataclass(frozen=True)
class _Trace:
    """The shared workload trace, already dispatched to cores."""

    arrival: np.ndarray  # (M,) absolute arrival times; rid == index
    work: np.ndarray  # (M,) reference work
    netrep: np.ndarray  # (M,) network + reply latency (result field 2)
    core: np.ndarray  # (M,) dispatch target


class _Kind:
    """Immutable per-group policy configuration (shared by forks)."""

    __slots__ = ("index", "vp", "tables", "vp_mode", "target_vp", "reorders", "f_const")

    def __init__(self, index, vp, tables=None, vp_mode=None, target_vp=None,
                 reorders=False, f_const=None):
        self.index = index
        self.vp = vp
        self.tables = tables
        self.vp_mode = vp_mode
        self.target_vp = target_vp
        self.reorders = reorders
        self.f_const = f_const


class _Group:
    """One copy-on-diverge point group on one core.

    All points in a group have experienced identical event sequences,
    so the *dynamics* state (queue, service progress, frequency) is
    shared scalars; the deadline mirror ``qdl``/``svc_gd`` and the
    output accumulators (energy, busy time, frequency residency) are
    per-point vectors — the latter so that groups whose dynamics
    reconverge can merge regardless of their divergent histories.
    """

    __slots__ = (
        "kind", "pts", "queue", "qdl", "n_q", "svc", "svc_gd",
        "remaining", "started_at", "frequency", "completion",
        "power", "mtime", "mstart", "energy",
        "busy", "wfreq", "stats_start", "ptr", "done",
    )

    def __init__(self, kind: _Kind, pts: np.ndarray, idle_watts: float):
        n = len(pts)
        self.kind = kind
        self.pts = pts
        self.queue: list[int] = []
        self.qdl = np.empty((n, 16)) if kind.vp else None
        self.n_q = 0
        self.svc: int | None = None
        self.svc_gd: np.ndarray | None = None
        self.remaining = 0.0
        self.started_at: float | None = None
        self.frequency = 0.0
        self.completion: float | None = None
        # EnergyMeter state, inlined: ``power`` follows the shared
        # dynamics; the integrals are per-point.
        self.power = idle_watts
        self.mtime = np.zeros(n)
        self.mstart = 0.0
        self.energy = np.zeros(n)
        self.busy = np.zeros(n)
        self.wfreq = np.zeros(n)
        self.stats_start = 0.0
        self.ptr = 0
        self.done: list[tuple[int, float]] = []

    def fork(self, rows: np.ndarray) -> "_Group":
        """A child carrying the point subset ``rows`` (local indices)."""
        child = _Group.__new__(_Group)
        child.kind = self.kind
        child.pts = self.pts[rows]
        child.queue = list(self.queue)
        child.qdl = self.qdl[rows].copy() if self.qdl is not None else None
        child.n_q = self.n_q
        child.svc = self.svc
        child.svc_gd = self.svc_gd[rows] if self.svc_gd is not None else None
        child.remaining = self.remaining
        child.started_at = self.started_at
        child.frequency = self.frequency
        child.completion = self.completion
        child.power = self.power
        child.mtime = self.mtime[rows]
        child.mstart = self.mstart
        child.energy = self.energy[rows]
        child.busy = self.busy[rows]
        child.wfreq = self.wfreq[rows]
        child.stats_start = self.stats_start
        child.ptr = self.ptr
        child.done = []
        return child

    def merge(self, other: "_Group") -> "_Group":
        """Union of two idle sibling groups (same kind, same next
        arrival).  Both sources must have been flushed already."""
        merged = _Group.__new__(_Group)
        merged.kind = self.kind
        merged.pts = np.concatenate([self.pts, other.pts])
        merged.queue = []
        merged.qdl = np.empty((len(merged.pts), 16)) if self.kind.vp else None
        merged.n_q = 0
        merged.svc = None
        merged.svc_gd = None
        merged.remaining = 0.0
        merged.started_at = None
        merged.frequency = 0.0
        merged.completion = None
        merged.power = self.power  # both idle ⇒ idle_watts
        merged.mtime = np.concatenate([self.mtime, other.mtime])
        merged.mstart = self.mstart
        merged.energy = np.concatenate([self.energy, other.energy])
        merged.busy = np.concatenate([self.busy, other.busy])
        merged.wfreq = np.concatenate([self.wfreq, other.wfreq])
        merged.stats_start = self.stats_start
        merged.ptr = self.ptr
        merged.done = []
        return merged


class _CoreEngine:
    """Advances one core's point groups through the shared trace."""

    def __init__(self, trace, arr_ids, gd, speed_of, active_power_of,
                 idle_watts, stats, point_done):
        self.trace = trace
        self.arr_ids = arr_ids  # (m,) global arrival indices on this core
        self.arr_t = trace.arrival[arr_ids]
        self.gd = gd  # (P, M) per-point governor deadlines
        self.speed_of = speed_of
        self.active_power_of = active_power_of
        self.idle_watts = idle_watts
        self.stats = stats
        self.point_done = point_done  # per-point completion sinks

    # -- lineage --------------------------------------------------------------------

    def flush(self, g: _Group) -> None:
        """Hand a retiring group's completions to its points.

        A point's lineage (root → fork child → merged group → …)
        retires strictly forward in simulation time, so per-point
        flush order is chronological."""
        if g.done:
            for p in g.pts:
                self.point_done[p].extend(g.done)
            g.done = []

    # -- meter / progress (mirror CoreSimulator float-for-float) -------------------

    # The energy-meter advance (energy += power * dt) is inlined at its
    # two call sites below; singleton groups dominate after forking, so
    # the element-wise branch skips two ufunc dispatches per advance
    # and rounds identically (same double math).

    def _set_power(self, g: _Group, watts: float, now: float) -> None:
        # inline _advance_meter (hot: once per power change)
        if g.energy.size == 1:
            g.energy[0] += g.power * (now - g.mtime[0])
            g.mtime[0] = now
        else:
            g.energy += g.power * (now - g.mtime)
            g.mtime[:] = now
        g.power = watts

    def _sync(self, g: _Group, now: float) -> None:
        if g.svc is not None and g.started_at is not None:
            elapsed = now - g.started_at
            if elapsed > 0:
                retired = elapsed / self.speed_of(g.frequency)
                g.remaining = max(0.0, g.remaining - retired)
                if g.busy.size == 1:
                    g.busy[0] += elapsed
                    g.wfreq[0] += elapsed * g.frequency
                else:
                    g.busy += elapsed
                    g.wfreq += elapsed * g.frequency
            g.started_at = now
        # inline _advance_meter (hot: once per sync)
        if g.energy.size == 1:
            g.energy[0] += g.power * (now - g.mtime[0])
            g.mtime[0] = now
        else:
            g.energy += g.power * (now - g.mtime)
            g.mtime[:] = now

    def _apply(self, g: _Group, f: float, now: float, force: bool) -> None:
        if not force and abs(f - g.frequency) < 1e-6:
            return
        g.frequency = f
        self._set_power(g, self.active_power_of(f), now)
        remaining_time = g.remaining * self.speed_of(f)
        g.completion = now + remaining_time

    # -- decisions ------------------------------------------------------------------

    def _decide_apply(self, g: _Group, now: float, force: bool):
        kind = g.kind
        if not kind.vp:
            self._apply(g, kind.f_const, now, force)
            return None
        n_pts = len(g.pts)
        q = g.n_q
        completed = self.trace.work[g.svc] - g.remaining
        offset = kind.tables.head_offset(completed or 0.0)
        if n_pts == 1:
            # Singleton group: the pure-Python early-exit decision (same
            # floats, no vectorization overhead for a 1-row batch).
            deltas1 = [g.svc_gd[0] - now]
            if q:
                row = g.qdl[0]
                deltas1 += [row[i] - now for i in range(q)]
            f = kind.tables.decide_point(deltas1, offset, kind.vp_mode, kind.target_vp)
            self.stats["n_decisions"] += 1
            self._apply(g, f, now, force)
            return None
        deltas = np.empty((n_pts, 1 + q))
        deltas[:, 0] = g.svc_gd - now
        np.subtract(g.qdl[:, :q], now, out=deltas[:, 1:])
        chosen = kind.tables.decide_batch(deltas, offset, kind.vp_mode, kind.target_vp)
        self.stats["n_decisions"] += n_pts
        first = chosen[0]
        if n_pts == 1 or bool((chosen == first).all()):
            self._apply(g, float(first), now, force)
            return None
        self.stats["n_forks"] += 1
        self.flush(g)
        children = []
        for f in np.unique(chosen):
            child = g.fork(np.flatnonzero(chosen == f))
            self._apply(child, float(f), now, force)
            children.append(child)
        return children

    # -- queue transitions ----------------------------------------------------------

    def _grow_qdl(self, g: _Group, need: int) -> None:
        if need > g.qdl.shape[1]:
            grown = np.empty((len(g.pts), max(2 * g.qdl.shape[1], need)))
            grown[:, : g.n_q] = g.qdl[:, : g.n_q]
            g.qdl = grown

    def _insert(self, g: _Group, pos: int, a: int, newd: np.ndarray) -> None:
        self._grow_qdl(g, g.n_q + 1)
        g.qdl[:, pos + 1 : g.n_q + 1] = g.qdl[:, pos : g.n_q]
        g.qdl[:, pos] = newd
        g.n_q += 1
        g.queue.insert(pos, a)

    def _start_next(self, g: _Group, now: float):
        a = g.queue.pop(0)
        if g.kind.vp:
            g.svc_gd = g.qdl[:, 0].copy()
            g.qdl[:, : g.n_q - 1] = g.qdl[:, 1 : g.n_q]
            g.n_q -= 1
        g.svc = a
        g.remaining = self.trace.work[a]
        g.started_at = now
        return self._decide_apply(g, now, force=True)

    def _post_enqueue(self, g: _Group, now: float):
        if g.svc is None:
            return self._start_next(g, now)
        self._sync(g, now)
        return self._decide_apply(g, now, force=False)

    def _handle_arrival(self, g: _Group, a: int, now: float):
        if g.kind.vp:
            if len(g.pts) == 1:
                # Singleton group: scalar insert (a sorted row's prefix
                # of elements <= new is exactly the side="right" count).
                nv = self.gd[g.pts[0], a]
                n_q = g.n_q
                pos = n_q
                if g.kind.reorders:
                    row = g.qdl[0]
                    pos = 0
                    while pos < n_q and row[pos] <= nv:
                        pos += 1
                self._grow_qdl(g, n_q + 1)
                row = g.qdl[0]
                if pos < n_q:
                    row[pos + 1 : n_q + 1] = row[pos:n_q]
                row[pos] = nv
                g.n_q += 1
                g.queue.insert(pos, a)
                return self._post_enqueue(g, now)
            newd = self.gd[g.pts, a]
            if g.kind.reorders and g.n_q:
                # searchsorted side="right" per point: elements <= new.
                pos_vec = (g.qdl[:, : g.n_q] <= newd[:, None]).sum(axis=1)
                first = pos_vec[0]
                if not bool((pos_vec == first).all()):
                    self.stats["n_forks"] += 1
                    self.flush(g)
                    children = []
                    for pos in np.unique(pos_vec):
                        rows = np.flatnonzero(pos_vec == pos)
                        child = g.fork(rows)
                        self._insert(child, int(pos), a, newd[rows])
                        sub = self._post_enqueue(child, now)
                        children.extend(sub if sub is not None else [child])
                    return children
                self._insert(g, int(first), a, newd)
            else:
                # FIFO append — or an EDF insert into an empty queue,
                # which is the same position.
                pos = g.n_q
                self._grow_qdl(g, g.n_q + 1)
                g.qdl[:, pos] = newd
                g.n_q += 1
                g.queue.insert(pos, a)
        else:
            g.queue.append(a)
        return self._post_enqueue(g, now)

    def _handle_completion(self, g: _Group, now: float):
        self._sync(g, now)
        g.remaining = 0.0
        g.done.append((g.svc, now))
        g.svc = None
        g.started_at = None
        g.completion = None
        if g.kind.vp:
            g.svc_gd = None
        if g.queue:
            return self._start_next(g, now)
        g.frequency = 0.0
        self._set_power(g, self.idle_watts, now)
        return None

    # -- the loop -------------------------------------------------------------------

    def _advance(self, g: _Group, until: float):
        """Run ``g`` until the phase end, the next idle gap, or a fork.

        Returns ``None`` at the phase boundary, ``"idle"`` when the
        core went idle (the group is frozen until arrival ``g.ptr``,
        the merge rendezvous), or the fork children."""
        arr_t = self.arr_t
        n_arr = arr_t.size
        while True:
            t_arr = arr_t[g.ptr] if g.ptr < n_arr else _INF
            t_cmp = g.completion if g.svc is not None else _INF
            if t_cmp <= t_arr:
                if t_cmp > until:
                    return None
                self.stats["n_events"] += 1
                kids = self._handle_completion(g, t_cmp)
                if kids is None and g.svc is None:
                    return "idle"
            else:
                if t_arr > until:
                    return None
                a = int(self.arr_ids[g.ptr])
                g.ptr += 1
                self.stats["n_events"] += 1
                kids = self._handle_arrival(g, a, t_arr)
            if kids is not None:
                return kids

    def run_phase(self, groups: list[_Group], until: float) -> list[_Group]:
        """Advance every group to ``until``, merging reconverged forks.

        Idle groups wait in a min-heap keyed by (next arrival, kind);
        the smallest key resumes first, so by the time a group resumes
        no sibling can still reach the same idle state — every merge
        opportunity is taken."""
        finished: list[_Group] = []
        idle: dict[tuple[int, int], _Group] = {}
        heap: list[tuple[int, int]] = []
        stack = list(groups)
        while stack or heap:
            if stack:
                g = stack.pop()
            else:
                key = heapq.heappop(heap)
                g = idle.pop(key, None)
                if g is None:
                    continue  # stale entry (superseded by a merge)
            res = self._advance(g, until)
            if res is None:
                finished.append(g)
            elif res == "idle":
                key = (g.ptr, g.kind.index)
                sibling = idle.get(key)
                if sibling is not None:
                    self.flush(sibling)
                    self.flush(g)
                    idle[key] = sibling.merge(g)
                    self.stats["n_merges"] += 1
                else:
                    idle[key] = g
                    heapq.heappush(heap, key)
            else:
                stack.extend(res)
        return finished


# -- trace extraction ---------------------------------------------------------------


def _extract_trace(service_model, cfg, network_latency_sampler,
                   reply_latency_sampler):
    """Replicate the scalar runner's RNG consumption, draw for draw.

    The scalar runner refills four buffers per 4096-arrival chunk in
    the order netlat → replat → gaps → work, schedules the first
    arrival after ``gaps[0]``, and has arrival ``j`` (rid ``j``) read
    flat index ``j + 1``.  ``np.cumsum`` over the concatenated gaps is
    the same sequential float accumulation as the event clock.
    """
    from ..sim.runner import constant_latency_sampler

    rng = ensure_rng(cfg.seed)
    arrival_rng, latency_rng, work_rng, dispatch_rng = spawn(rng, 4)
    if network_latency_sampler is None:
        network_latency_sampler = constant_latency_sampler(cfg.network_budget_s / 2.0)

    per_core_rate = service_model.arrival_rate_for_utilization(cfg.utilization)
    rate = per_core_rate * cfg.n_cores
    chunk = 4096

    net_parts, rep_parts, gap_parts, work_parts = [], [], [], []
    while True:
        netlat = np.asarray(network_latency_sampler(chunk, latency_rng), dtype=float)
        if reply_latency_sampler is not None:
            replat = np.asarray(reply_latency_sampler(chunk, latency_rng), dtype=float)
        else:
            replat = np.zeros(chunk)
        if np.any(netlat < 0) or np.any(replat < 0):
            raise ConfigurationError("network latency sampler returned negative values")
        gaps = arrival_rng.exponential(1.0 / rate, size=chunk)
        work = np.asarray(service_model.sample_work(chunk, work_rng), dtype=float)
        net_parts.append(netlat)
        rep_parts.append(replat)
        gap_parts.append(gaps)
        work_parts.append(work)
        arrivals = np.cumsum(np.concatenate(gap_parts)) if len(gap_parts) > 1 else np.cumsum(gaps)
        if arrivals[-1] > cfg.duration_s:
            break

    # Arrival j fires at the cumulative sum of gaps[0..j] and reads
    # flat index j + 1 for work/latency; arrivals at exactly
    # duration_s still fire (run_until is inclusive).
    m = int(np.searchsorted(arrivals, cfg.duration_s, side="right"))
    net = np.concatenate(net_parts)[1 : m + 1]
    rep = np.concatenate(rep_parts)[1 : m + 1]
    work = np.concatenate(work_parts)[1 : m + 1]
    arrivals = arrivals[:m]

    if cfg.dispatch == "random":
        core = dispatch_rng.integers(cfg.n_cores, size=m)
    else:  # round-robin
        core = np.arange(m, dtype=np.int64) % cfg.n_cores

    return _Trace(arrival=arrivals, work=work, netrep=net + rep, core=core), net, rep


# -- classification -----------------------------------------------------------------


def _classify(probe, sleep_model, dispatch):
    """True when the lockstep engine reproduces this point exactly."""
    from ..policies.base import Governor, VPGovernor
    from ..policies.maxfreq import MaxFrequencyGovernor

    if sleep_model is not None or dispatch == "jsq":
        return False
    if type(probe).timer_period_s is not None:
        return False
    if type(probe).on_complete is not Governor.on_complete:
        return False
    if isinstance(probe, MaxFrequencyGovernor):
        return True
    return isinstance(probe, VPGovernor) and probe._tables is not None


def _group_key(probe):
    from ..policies.maxfreq import MaxFrequencyGovernor

    if isinstance(probe, MaxFrequencyGovernor):
        return ("const", float(probe.ladder.f_max))
    # network_aware is deliberately absent: it only shapes the deadline
    # *values* (per-point data), not the group dynamics.
    return (
        "vp",
        id(probe._tables),
        probe.vp_mode,
        float(probe.target_vp),
        bool(probe.reorders_queue),
    )


# -- entry point --------------------------------------------------------------------


def run_multipoint_simulation(
    service_model: ServiceModel,
    points: list[MultipointPoint],
    network_latency_sampler=None,
    sleep_model=None,
    reply_latency_sampler=None,
    stats_out: dict | None = None,
):
    """Simulate every grid point in one lockstep pass.

    Returns one :class:`~repro.sim.runner.ServerSimResult` per point,
    in input order, each bit-identical to
    ``run_server_simulation(..., engine="tabulated")`` of the same
    point.  Points the lockstep model cannot represent run through the
    scalar simulator transparently.
    """
    from ..power.models import CorePowerModel
    from ..sim.runner import ServerSimResult, run_server_simulation

    if not points:
        return []

    stats = {"n_events": 0, "n_decisions": 0, "n_forks": 0, "n_merges": 0,
             "n_fallback": 0}

    probes = []
    for p in points:
        governor = p.governor_factory()
        if hasattr(governor, "set_engine"):
            governor.set_engine("multipoint")
        probes.append(governor)

    supported = [
        i for i, p in enumerate(points)
        if _classify(probes[i], sleep_model, p.config.dispatch)
    ]
    results: list[ServerSimResult | None] = [None] * len(points)

    for i, p in enumerate(points):
        if i in supported:
            continue
        stats["n_fallback"] += 1
        results[i] = run_server_simulation(
            service_model,
            p.governor_factory,
            p.config,
            network_latency_sampler=network_latency_sampler,
            governor_name=p.governor_name,
            sleep_model=sleep_model,
            reply_latency_sampler=reply_latency_sampler,
            engine="tabulated" if hasattr(probes[i], "set_engine") else None,
        )

    if supported:
        cfg0 = points[supported[0]].config
        for i in supported[1:]:
            for field in _SHARED_FIELDS:
                if getattr(points[i].config, field) != getattr(cfg0, field):
                    raise ConfigurationError(
                        f"multipoint points disagree on shared field {field!r}: "
                        f"{getattr(points[i].config, field)!r} != {getattr(cfg0, field)!r}"
                    )

        trace, net, rep = _extract_trace(
            service_model, cfg0, network_latency_sampler, reply_latency_sampler
        )
        n_arrivals = trace.arrival.size
        n_sup = len(supported)

        # Per-point deadline matrices, scalar op order:
        #   deadline         = ((T + L) - net) - rep
        #   governor (aware) = (T + L) - net
        #   governor (obliv) = T + server_budget
        dl = np.empty((n_sup, n_arrivals))
        gd = np.empty((n_sup, n_arrivals))
        for s, i in enumerate(supported):
            cfg = points[i].config
            tl = trace.arrival + cfg.latency_constraint_s
            dl[s] = (tl - net) - rep
            if probes[i].network_aware:
                gd[s] = tl - net
            else:
                gd[s] = trace.arrival + cfg.server_budget_s

        fm = service_model.frequency_model
        power_model = CorePowerModel()
        _speeds: dict[float, float] = {}
        _powers: dict[float, float] = {}

        def speed_of(f: float) -> float:
            v = _speeds.get(f)
            if v is None:
                v = _speeds[f] = fm.speed_factor(f)
            return v

        def active_power_of(f: float) -> float:
            v = _powers.get(f)
            if v is None:
                v = _powers[f] = power_model.active_power(f)
            return v

        # Initial groups: one per dynamics signature, shared across all
        # points whose governors evolve identically from equal state.
        kinds: dict[tuple, tuple[_Kind, list[int]]] = {}
        for s, i in enumerate(supported):
            probe = probes[i]
            key = _group_key(probe)
            if key not in kinds:
                if key[0] == "const":
                    kind = _Kind(index=len(kinds), vp=False, f_const=key[1])
                else:
                    kind = _Kind(
                        index=len(kinds),
                        vp=True,
                        tables=probe._tables,
                        vp_mode=probe.vp_mode,
                        target_vp=probe.target_vp,
                        reorders=probe.reorders_queue,
                    )
                kinds[key] = (kind, [])
            kinds[key][1].append(s)

        # Per-core lockstep runs.
        duration, warmup = cfg0.duration_s, cfg0.warmup_s
        point_done: list[list] = [[] for _ in range(n_sup)]
        core_busy = np.empty((n_sup, cfg0.n_cores))
        core_freq = np.empty((n_sup, cfg0.n_cores))
        core_power = np.empty((n_sup, cfg0.n_cores))
        for c in range(cfg0.n_cores):
            arr_ids = np.flatnonzero(trace.core == c)
            engine = _CoreEngine(
                trace, arr_ids, gd, speed_of, active_power_of,
                power_model.idle_watts, stats, point_done,
            )
            groups = [
                _Group(kind, np.asarray(rows, dtype=np.intp), power_model.idle_watts)
                for kind, rows in kinds.values()
            ]
            leaves = engine.run_phase(groups, warmup)
            for g in leaves:
                engine._sync(g, warmup)
                g.busy[:] = 0.0
                g.wfreq[:] = 0.0
                g.stats_start = warmup
                g.energy[:] = 0.0
                g.mstart = warmup
            leaves = engine.run_phase(leaves, duration)
            for g in leaves:
                # Scalar read order: busy_fraction and the busy-weighted
                # frequency are materialized *before* cpu_power()'s
                # final sync folds the tail segment in.
                elapsed = duration - g.stats_start
                busy_frac = g.busy / elapsed if elapsed > 0 else np.zeros(len(g.pts))
                mean_freq = np.zeros(len(g.pts))
                np.divide(g.wfreq, g.busy, out=mean_freq, where=g.busy > 0)
                engine._sync(g, duration)
                m_elapsed = duration - g.mstart
                if m_elapsed > 0:
                    avg_power = g.energy / m_elapsed
                else:
                    avg_power = np.full(len(g.pts), g.power)
                engine.flush(g)
                core_busy[g.pts, c] = busy_frac
                core_freq[g.pts, c] = mean_freq
                core_power[g.pts, c] = avg_power

        for s, i in enumerate(supported):
            point = points[i]
            cfg = point.config
            completions = point_done[s]
            completions.sort(key=lambda af: (af[1], af[0]))

            fields = np.empty((len(completions), 4))
            n = 0
            for a, fin in completions:
                if trace.arrival[a] >= warmup:
                    row = fields[n]
                    row[0] = trace.arrival[a]
                    row[1] = fin
                    row[2] = trace.netrep[a]
                    row[3] = dl[s, a]
                    n += 1
            if n == 0:
                raise ConfigurationError(
                    "no requests completed after warmup; increase duration or load"
                )
            fields = fields[:n]
            sojourns = fields[:, 1] - fields[:, 0]
            totals = sojourns + fields[:, 2]
            violations = fields[:, 1] > fields[:, 3] + 1e-12
            busy = core_busy[s]
            busy_total = busy.sum()
            mean_freq = (
                float(np.dot(busy, core_freq[s]) / busy_total) if busy_total > 0 else 0.0
            )
            cpu_power = float(sum(core_power[s]))

            results[i] = ServerSimResult(
                governor=point.governor_name or probes[i].name,
                config=cfg,
                n_completed=n,
                cpu_power_watts=cpu_power,
                server_power_watts=cfg.static_watts + cpu_power,
                total_latency=LatencySummary.from_samples(totals),
                sojourn=LatencySummary.from_samples(sojourns),
                violation_rate=float(violations.mean()),
                mean_busy_frequency_hz=mean_freq,
                mean_busy_fraction=float(busy.mean()),
            )

    if stats_out is not None:
        stats_out.update(stats)
        stats_out["n_points"] = len(points)
    return results
