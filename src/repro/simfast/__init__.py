"""Server-simulation fast path: tabulated VP decisions + incremental queue state.

The server-side twin of :mod:`repro.netfast`.  ``simfast`` turns the
governor decision loop — the dominant cost of every Fig. 12 point and
joint sweep — into table lookups:

* :class:`VPTableEngine` precomputes CCDF-at-budget rows per
  (head offset, fold count) so one decision is a single vectorized
  gather over the whole queue at *all* ladder frequencies at once;
* :class:`IncrementalEquivalentQueue` mirrors a core's deadline state
  across decisions, replacing per-event snapshot rebuilds;
* :func:`shared_table_engine` shares the tables process-wide so warm
  sweep workers never rebuild them.

Governors select the fast path with ``engine="tabulated"`` (the
default) and fall back to the pre-existing mixture evaluation with
``engine="reference"``; the two produce identical frequency decisions
(enforced by ``tests/test_simfast_equivalence.py``).
"""

from .equivalent import IncrementalEquivalentQueue
from .multipoint import MultipointPoint, run_multipoint_simulation
from .tables import VPTableEngine, clear_shared_engines, shared_table_engine

__all__ = [
    "IncrementalEquivalentQueue",
    "MultipointPoint",
    "run_multipoint_simulation",
    "VPTableEngine",
    "shared_table_engine",
    "clear_shared_engines",
]
