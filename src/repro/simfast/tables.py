"""Tabulated violation-probability engine (the server-side `netfast`).

The reference governors (:mod:`repro.policies.vp_common`) evaluate, at
every decision instant and every ladder rung the binary search probes,
a mixture CCDF per queued request::

    VP_i(f) = sum_j  P[head = j*dx] * CCDF_{S_k}( budget_i(f) - j*dx )

All CCDFs in play are step functions on the shared work grid, so the
whole mixture collapses to a *single table lookup*: with
``m = floor(budget / dx + 1e-9)`` (exactly the bin index the reference
CCDF evaluation computes),

    VP_i(f) = T[head_offset, k][m]

where ``T[o, k]`` is the CCDF-at-bin table of the equivalent
distribution ``head_o ⊗ S_k`` — a pure function of the service model.
:class:`VPTableEngine` precomputes those tables lazily per
``(head offset, fold count k)`` and answers a governor decision for the
*entire queue at all candidate frequencies at once* as one fancy-index
gather plus a reduction, replacing the per-request, per-rung mixture
loop.

Tables are built once per process and shared across governors, cores
and same-process sweep tasks through :func:`shared_table_engine`
(mirroring ``netfast``'s compiled topology indexes).  Total table
memory is bounded; least-recently-used head offsets are evicted and
rebuilt on demand (rebuilds are deterministic, so eviction never
changes decisions).
"""

from __future__ import annotations

import hashlib
from math import floor as _floor

import numpy as np
from scipy.signal import fftconvolve

from ..errors import ConfigurationError
from ..server.distributions import (
    DEFAULT_MAX_BINS,
    ConvolutionCache,
    WorkDistribution,
)
from ..server.dvfs import FrequencyLadder
from ..server.service import ServiceModel

__all__ = [
    "VPTableEngine",
    "shared_table_engine",
    "clear_shared_engines",
    "export_shared_tables",
    "publish_shared_tables",
]

#: Decision modes: the limiting request (Rubik) or the queue average
#: (EPRONS-Server).
VP_MODES = ("max", "mean")

#: Soft bound on total table bytes per engine; least-recently-used head
#: offsets are evicted past it.
DEFAULT_MAX_TABLE_BYTES = 192 * 1024 * 1024


class _HeadStack:
    """Stacked VP lookup rows for one head distribution.

    Row ``k`` tabulates the violation probability of the ``k``-th
    equivalent request (``head ⊗ S_k``) against the work-budget bin:
    ``row[0] = 1.0`` covers negative budgets, ``row[m + 1]`` is the VP
    for budgets in bin ``m``, and entries beyond a row's natural
    support are exactly ``0.0`` — the same padded-CCDF layout as
    :class:`~repro.server.distributions.WorkDistribution`, so clipping
    the gathered indices reproduces ``ccdf_many`` bin for bin.
    """

    __slots__ = ("head", "rows", "tables")

    def __init__(self, head: WorkDistribution | None):
        self.head = head
        self.rows: list[np.ndarray] = []
        self.tables = np.zeros((0, 1))

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def width(self) -> int:
        return self.tables.shape[1]

    @property
    def nbytes(self) -> int:
        return self.tables.nbytes

    def ensure(self, k_max: int, powers: ConvolutionCache) -> None:
        """Extend the stack to cover fold counts ``0..k_max``."""
        if k_max < self.n_rows:
            return
        for k in range(self.n_rows, k_max + 1):
            self.rows.append(self._build_row(k, powers))
        width = max(r.size for r in self.rows)
        tables = np.zeros((len(self.rows), width))
        for i, row in enumerate(self.rows):
            tables[i, : row.size] = row
        self.tables = tables
        # Rebind rows to views into the padded table: keeping the owned
        # build arrays alive would hold every row twice, so the engine's
        # byte accounting (``nbytes`` counts only ``tables``) would see
        # half the resident footprint and the LRU cap would overshoot.
        self.rows = [tables[i, : row.size] for i, row in enumerate(self.rows)]

    def _build_row(self, k: int, powers: ConvolutionCache) -> np.ndarray:
        if self.head is None:
            # Idle-head stack: the equivalent of the k-th queued request
            # is S_k itself; reuse its padded CCDF table verbatim (the
            # reference mixture degenerates to the same single lookup).
            if k == 0:
                return np.array([1.0, 0.0])
            return powers.power(k)._ccdf_table.copy()
        if k == 0:
            return self.head._ccdf_table.copy()
        # row[m + 1] = sum_j head.pmf[j] * ccdf_{S_k}((m - j) * dx),
        # with the below-grid region contributing 1.0 per the reference
        # CCDF clipping.  That is a discrete convolution of the head
        # PMF with the padded CCDF extended by leading ones.
        h = self.head.pmf
        ccdf = powers.power(k)._ccdf_table  # [1.0, P(S>0), ..., 0.0]
        extended = np.concatenate([np.ones(h.size - 1), ccdf[1:]]) if h.size > 1 else ccdf[1:]
        content = fftconvolve(h, extended)[h.size - 1 : h.size - 1 + h.size + ccdf.size - 2]
        np.clip(content, 0.0, 1.0, out=content)
        # CCDF tables are exactly non-increasing; enforce it so FFT
        # noise can never produce a locally non-monotone row.
        np.minimum.accumulate(content, out=content)
        content[-1] = 0.0  # provably zero: every mixture term is past its grid
        row = np.empty(content.size + 1)
        row[0] = 1.0
        row[1:] = content
        return row


class VPTableEngine:
    """Shared, bounded store of tabulated VP decisions for one
    (service model, frequency ladder) pair."""

    def __init__(
        self,
        service_model: ServiceModel,
        ladder: FrequencyLadder,
        max_bins: int = DEFAULT_MAX_BINS,
        max_table_bytes: int = DEFAULT_MAX_TABLE_BYTES,
    ):
        self.service_model = service_model
        self.ladder = ladder
        self.base = service_model.distribution
        self.dx = self.base.dx
        self.max_table_bytes = max_table_bytes
        self.powers = ConvolutionCache(self.base, max_bins=max_bins)
        fm = service_model.frequency_model
        # Scalar speed_factor per rung — the exact floats the reference
        # binary search divides by.
        self.frequencies = tuple(float(f) for f in ladder)
        self.speeds = np.array([fm.speed_factor(f) for f in self.frequencies])
        self.n_freqs = len(self.frequencies)
        # Hot-path caches for decide_batch: the ladder as an ndarray
        # and fold-row index vectors keyed by queue length.
        self._freq_array = np.array(self.frequencies)
        self._arange_cache: dict[int, np.ndarray] = {}
        self._speed_list = [float(s) for s in self.speeds]
        # decide_point's rung order: top rung first (fallback gate),
        # then bottom-up to the first satisfying rung.
        self._scan_order = (self.n_freqs - 1, *range(self.n_freqs - 1))
        # Insertion-ordered LRU of head stacks, keyed by conditioning
        # offset (None = no in-service request).
        self._stacks: dict[int | None, _HeadStack] = {}
        self._total_bytes = 0
        self.n_rows_built = 0

    # -- table access -------------------------------------------------------------

    def head_offset(self, completed_work: float) -> int:
        """Grid offset of the in-service head (shared quantization)."""
        return self.base.grid_offset(completed_work)

    def stack(self, offset: int | None, k_max: int) -> _HeadStack:
        """The (lazily built) stack for a head offset, covering folds
        ``0..k_max``; refreshes LRU order and enforces the byte cap."""
        stacks = self._stacks
        stack = stacks.get(offset)
        if stack is not None and k_max < stack.n_rows:
            # Hot path (no growth needed): refresh LRU order and go.
            del stacks[offset]
            stacks[offset] = stack
            return stack
        if stack is None:
            head = None if offset is None else self.base.conditional_remaining_at(offset)
            stack = _HeadStack(head)
        else:
            del stacks[offset]
        before_rows, before_bytes = stack.n_rows, stack.nbytes
        stack.ensure(k_max, self.powers)
        self.n_rows_built += stack.n_rows - before_rows
        self._total_bytes += stack.nbytes - before_bytes
        stacks[offset] = stack
        if self._total_bytes > self.max_table_bytes:
            self._evict(keep=offset)
        return stack

    def table_bytes(self) -> int:
        return self._total_bytes

    def _evict(self, keep: int | None) -> None:
        for key in list(self._stacks):
            if self._total_bytes <= self.max_table_bytes:
                return
            if key == keep or key is keep:
                continue
            self._total_bytes -= self._stacks.pop(key).nbytes

    # -- decisions ----------------------------------------------------------------

    def decide(
        self,
        deltas: np.ndarray,
        offset: int | None,
        mode: str,
        target_vp: float,
    ) -> float | None:
        """Lowest ladder frequency whose VP metric meets ``target_vp``.

        ``deltas`` holds ``deadline - now`` per request — the in-service
        head first when ``offset`` is not ``None``, then the queued
        requests in queue order (fold counts are implied by position,
        exactly the reference :class:`EquivalentQueue` layout).  Returns
        ``None`` when even ``f_max`` fails, mirroring
        :meth:`FrequencyLadder.lowest_satisfying`.
        """
        n = deltas.size
        if n == 0:
            raise ConfigurationError("decide() needs at least one request")
        if offset is None:
            k_max = n  # queued requests fold 1..n
            rows = np.arange(1, n + 1)
        else:
            k_max = n - 1  # head is fold 0
            rows = np.arange(n)
        stack = self.stack(offset, k_max)
        # Budget bins for every request at every rung in one shot; the
        # per-element ops match the reference scalar arithmetic
        # ((D - now) / speed, then the ccdf_many floor-and-clip).
        budgets = deltas[:, None] / self.speeds[None, :]
        m = np.floor(budgets / self.dx + 1e-9).astype(np.int64)
        np.minimum(m, stack.width - 2, out=m)
        np.maximum(m, -1, out=m)
        vp = stack.tables[rows[:, None], m + 1]
        if offset is not None and deltas[0] < 0.0:
            # The reference head lookup (WorkDistribution.ccdf) early-
            # returns 1.0 for strictly negative budgets.
            vp[0, :] = 1.0
        metric = vp.max(axis=0) if mode == "max" else vp.mean(axis=0)
        satisfied = metric <= target_vp
        if not satisfied[-1]:
            return None
        return self.frequencies[int(np.argmax(satisfied))]

    def decide_point(
        self,
        deltas: list,
        offset: int | None,
        mode: str,
        target_vp: float,
    ) -> float:
        """Scalar :meth:`decide` for one short queue, pure Python.

        ``deltas`` is a list of Python floats (same layout as
        :meth:`decide`); returns the chosen frequency with the
        ``None -> f_max`` fallback applied.  Restricted to queues
        shorter than 8 requests: below numpy's pairwise-sum block the
        vectorized reductions accumulate strictly left to right, which
        is the order this loop uses — so each float matches
        :meth:`decide` bit for bit.  The selection logic is decide()'s,
        literally: the top rung gates the ``None -> f_max`` fallback,
        then the upward scan stops at the first satisfying rung
        (``argmax`` of the satisfied mask) without evaluating the rungs
        above it.
        """
        n = len(deltas)
        if n == 0:
            raise ConfigurationError("decide_point() needs at least one request")
        if n >= 8:
            chosen = self.decide(np.array(deltas), offset, mode, target_vp)
            return chosen if chosen is not None else self.frequencies[-1]
        if offset is None:
            k_max = n
            row0 = 1
        else:
            k_max = n - 1
            row0 = 0
        stack = self.stack(offset, k_max)
        item = stack.tables.item
        hi = stack.width - 2
        dx = self.dx
        freqs = self.frequencies
        speeds = self._speed_list
        is_mean = mode != "max"
        # A strictly negative head delta reads VP 1.0 at every rung
        # (the reference CCDF's early return); fold it into the
        # accumulator seed and scan the remaining elements.  Seeding
        # max with 0.0 is exact too: every table value is in [0, 1].
        if offset is not None and deltas[0] < 0.0:
            seed, i0 = 1.0, 1
        else:
            seed, i0 = 0.0, 0
        tail = deltas[i0:]
        # Literal decide() evaluation order: the top rung gates the
        # None -> f_max fallback, then the upward scan returns the
        # first satisfying rung.
        gate = True
        for fi in self._scan_order:
            s = speeds[fi]
            acc = seed
            ri = row0 + i0
            if is_mean:
                for d in tail:
                    m = _floor(d / s / dx + 1e-9)
                    if m > hi:
                        m = hi
                    elif m < -1:
                        m = -1
                    acc += item(ri, m + 1)
                    ri += 1
                acc /= n
            else:
                for d in tail:
                    m = _floor(d / s / dx + 1e-9)
                    if m > hi:
                        m = hi
                    elif m < -1:
                        m = -1
                    v = item(ri, m + 1)
                    if v > acc:
                        acc = v
                    ri += 1
            if gate:
                gate = False
                if acc > target_vp:
                    return freqs[-1]
            elif acc <= target_vp:
                return freqs[fi]
        return freqs[-1]

    def decide_batch(
        self,
        deltas: np.ndarray,
        offset: int | None,
        mode: str,
        target_vp: float,
    ) -> np.ndarray:
        """Vectorized :meth:`decide` over a lockstep point group.

        ``deltas`` is ``(P, n)``: one row of ``deadline - now`` values
        per grid point, all sharing queue composition (and head offset
        when ``offset`` is not ``None``).  Returns the chosen frequency
        per point with the ``None -> f_max`` fallback already applied —
        the shape the multipoint engine partitions groups on.  Every
        per-element float op matches :meth:`decide` (the reductions run
        over the same-length axis in the same sequential order), so row
        ``p`` equals ``decide(deltas[p], ...)`` bit for bit.
        """
        n_points, n = deltas.shape
        if n == 0:
            raise ConfigurationError("decide_batch() needs at least one request")
        arange = self._arange_cache.get(n)
        if arange is None:
            arange = self._arange_cache[n] = np.arange(n + 1)
        if offset is None:
            k_max = n
            rows = arange[1:]
        else:
            k_max = n - 1
            rows = arange[:n]
        stack = self.stack(offset, k_max)
        # Same per-element float ops as :meth:`decide`, fused in place:
        # budget = (delta / speed) / dx + 1e-9, floored and clipped.
        budgets = deltas[:, :, None] / self.speeds[None, None, :]
        budgets /= self.dx
        budgets += 1e-9
        np.floor(budgets, out=budgets)
        m = budgets.astype(np.int64)
        np.minimum(m, stack.width - 2, out=m)
        np.maximum(m, -1, out=m)
        m += 1
        vp = stack.tables[rows[None, :, None], m]
        if offset is not None:
            negative = deltas[:, 0] < 0.0
            if negative.any():
                vp[negative, 0, :] = 1.0
        # ndarray.max/.mean delegate to these reductions (mean divides
        # the pairwise sum by the count), so the bits match decide().
        if mode == "max":
            metric = np.maximum.reduce(vp, axis=1)
        else:
            metric = np.add.reduce(vp, axis=1)
            metric /= n
        satisfied = metric <= target_vp
        freqs = self._freq_array
        chosen = freqs[np.argmax(satisfied, axis=1)]
        chosen[~satisfied[:, -1]] = freqs[-1]
        return chosen


# -- process-level sharing ------------------------------------------------------

_SHARED: dict[str, VPTableEngine] = {}
_MAX_SHARED = 8


def _fingerprint(service_model: ServiceModel, ladder: FrequencyLadder) -> str:
    """Content key: same grid + PMF + frequency model + ladder ⇒ same
    tables, regardless of object identity (sweep tasks rebuild their
    service models from specs)."""
    base = service_model.distribution
    fm = service_model.frequency_model
    h = hashlib.sha256()
    h.update(np.float64(base.dx).tobytes())
    h.update(base.pmf.tobytes())
    h.update(np.float64(fm.f_ref_hz).tobytes())
    h.update(np.float64(fm.independent_fraction).tobytes())
    h.update(ladder.frequencies.tobytes())
    return h.hexdigest()


#: fingerprint -> {head offset: (n_rows, width) table view}, landed by
#: :func:`_shm_restore`; engines created for a matching fingerprint
#: seed their stacks from these views instead of FFT-building rows.
_SHM_TABLES: dict[str, dict[int | None, np.ndarray]] = {}


def shared_table_engine(
    service_model: ServiceModel, ladder: FrequencyLadder
) -> VPTableEngine:
    """The process-wide engine for a (service model, ladder) pair.

    Governors are per-core and sweep tasks rebuild their models per
    spec; routing them all through this registry means the (expensive,
    content-identical) tables are built once per worker process and
    stay warm across every simulation in a sweep.  If a content-
    matching table bundle arrived over shared memory (the parent's
    publication), a new engine starts from those zero-copy views
    instead of rebuilding — decisions are bit-identical either way
    (padding is zeros and the stacks rebuild deterministically on
    growth or eviction).
    """
    key = _fingerprint(service_model, ladder)
    engine = _SHARED.pop(key, None)
    if engine is None:
        engine = VPTableEngine(service_model, ladder)
        _seed_from_shm(engine, key)
        while len(_SHARED) >= _MAX_SHARED:
            del _SHARED[next(iter(_SHARED))]
    _SHARED[key] = engine
    return engine


def clear_shared_engines() -> None:
    """Drop all process-level table engines and staged shared-memory
    table bundles (tests / memory pressure)."""
    _SHARED.clear()
    _SHM_TABLES.clear()


# -- shared-memory fabric ------------------------------------------------------


def export_shared_tables(engine: VPTableEngine):
    """``(arrays, meta)`` of an engine's warm stacks, shm-publishable.

    All stack tables are concatenated into one flat float64 array;
    ``meta`` records (offset, n_rows, width, start) per stack.  Returns
    ``None`` when no stack is warm.
    """
    stacks_meta: list[tuple[int | None, int, int, int]] = []
    flats: list[np.ndarray] = []
    pos = 0
    for offset, stack in engine._stacks.items():
        t = stack.tables
        if t.size == 0:
            continue
        stacks_meta.append((offset, t.shape[0], t.shape[1], pos))
        flats.append(t.ravel())
        pos += t.size
    if not flats:
        return None
    arrays = {"tables": np.concatenate(flats)}
    meta = {
        "fingerprint": _fingerprint(engine.service_model, engine.ladder),
        "stacks": tuple(stacks_meta),
    }
    return arrays, meta


def publish_shared_tables(store=None) -> list:
    """Publish every warm engine in the process registry; returns the
    manifests.  Idempotent per fingerprint (first publication wins), so
    warm the stacks a sweep will reuse before calling."""
    from ..exec.shm import shared_store

    store = store if store is not None else shared_store()
    manifests = []
    for engine in _SHARED.values():
        exported = export_shared_tables(engine)
        if exported is None:
            continue
        arrays, meta = exported
        manifests.append(
            store.publish("vp-tables", meta["fingerprint"], arrays, meta)
        )
    return manifests


def _shm_restore(arrays, meta) -> None:
    """Attach-side hook (see :mod:`repro.exec.shm`): slice the flat
    table array back into per-offset views and stage them for the next
    engine with this fingerprint."""
    tables = arrays["tables"]
    stacks: dict[int | None, np.ndarray] = {}
    for offset, n_rows, width, pos in meta["stacks"]:
        stacks[offset] = tables[pos : pos + n_rows * width].reshape(n_rows, width)
    _SHM_TABLES[meta["fingerprint"]] = stacks


def _seed_from_shm(engine: VPTableEngine, key: str) -> None:
    """Seed an engine's stacks from staged shared-memory views.

    Rows are the padded table rows themselves: padding is exactly
    zeros, and ``_HeadStack.ensure`` takes the max row size for its
    width, which the padded rows preserve (width == max natural row
    size by construction) — so later growth, eviction and every
    ``decide()`` reproduce the built-from-scratch engine bit for bit.
    """
    staged = _SHM_TABLES.get(key)
    if not staged:
        return
    for offset, tables in staged.items():
        head = (
            None if offset is None
            else engine.base.conditional_remaining_at(offset)
        )
        stack = _HeadStack(head)
        stack.rows = [tables[k] for k in range(tables.shape[0])]
        stack.tables = tables
        engine._stacks[offset] = stack
        engine._total_bytes += tables.nbytes
