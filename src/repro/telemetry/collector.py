"""Degraded stats collection: what the controller *actually* observes.

Sits between the true offered traffic and the
:class:`~repro.control.monitor.TrafficMonitor`: each epoch the
controller polls every edge switch for flow counters, and the
:class:`DegradedStatsCollector` replays a :class:`TelemetryProfile`
against those polls — dropping whole stats replies, re-serving stale
counters, perturbing values with bounded noise, and deferring batches
one epoch.  Degradation is per *switch* (an OpenFlow stats reply
carries every flow the switch reports), so one lost reply blinds the
monitor to all flows attached there at once — the failure mode that
makes per-flow prediction dangerous.

Replay is seed-deterministic and independent of iteration order:
every (epoch, switch) pair draws from its own content-keyed generator,
and flows within a reply are processed in sorted id order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..flows.traffic import TrafficSet
from ..topology.graph import Topology
from .profile import TelemetryProfile

__all__ = ["ObservedBatch", "DegradedStatsCollector"]


@dataclass(frozen=True)
class ObservedBatch:
    """One epoch's delivered telemetry.

    ``samples`` holds the rate observations that actually arrived this
    epoch (including late batches emitted in a previous one); ``gaps``
    counts the polls per flow that produced nothing — the monitor's
    missing-sample accounting feeds on it.
    """

    epoch: int
    samples: dict[str, list[float]] = field(default_factory=dict)
    gaps: dict[str, int] = field(default_factory=dict)
    n_polls: int = 0
    n_lost: int = 0
    n_stale: int = 0
    n_delayed: int = 0

    @property
    def n_delivered_samples(self) -> int:
        return sum(len(v) for v in self.samples.values())


class DegradedStatsCollector:
    """Replays a :class:`TelemetryProfile` over per-epoch stats polls.

    Parameters
    ----------
    topology:
        Used to resolve each flow's reporting switch (the edge switch
        its source host attaches to).
    profile:
        The degradation scenario.  :data:`~repro.telemetry.PERFECT_TELEMETRY`
        delivers every poll clean and byte-identically reproduces the
        pre-degradation observation stream.
    """

    def __init__(self, topology: Topology, profile: TelemetryProfile):
        self.topology = topology
        self.profile = profile
        #: Per-switch last successfully delivered {flow_id: rate} —
        #: what a stale reply re-serves.
        self._last_good: dict[str, dict[str, float]] = {}
        #: Late batches keyed by the epoch they arrive in.
        self._pending: dict[int, list[dict[str, float]]] = {}
        self._next_epoch = 0
        self.polls_total = 0
        self.polls_lost = 0
        self.polls_stale = 0
        self.polls_delayed = 0

    # -- grouping ----------------------------------------------------------------

    def _by_switch(self, traffic: TrafficSet) -> list[tuple[str, list]]:
        """Flows grouped by reporting switch, both levels sorted."""
        groups: dict[str, list] = {}
        for flow in traffic:
            sw = self.topology.attachment_switch(flow.src)
            groups.setdefault(sw, []).append(flow)
        return [
            (sw, sorted(groups[sw], key=lambda f: f.flow_id)) for sw in sorted(groups)
        ]

    # -- the epoch poll round ----------------------------------------------------

    def collect(self, epoch: int, traffic: TrafficSet, n_polls: int = 1) -> ObservedBatch:
        """Run ``n_polls`` stats rounds for ``epoch`` and return what arrived.

        ``traffic`` carries each flow's *true* current rate in
        ``demand_bps``.  Epochs must be visited in strictly increasing
        order (late batches are addressed to ``epoch + 1``).
        """
        if n_polls <= 0:
            raise ConfigurationError(f"n_polls must be positive, got {n_polls}")
        if epoch < self._next_epoch:
            raise ConfigurationError(
                f"collector already advanced past epoch {epoch} "
                f"(next is {self._next_epoch})"
            )
        self._next_epoch = epoch + 1

        samples: dict[str, list[float]] = {}
        gaps: dict[str, int] = {}
        n_rounds = n_lost = n_stale = n_delayed = 0

        # Late batches emitted in an earlier epoch land first — data a
        # real controller receives after the optimizer already ran.
        for batch in self._pending.pop(epoch, ()):
            for fid in sorted(batch):
                samples.setdefault(fid, []).append(batch[fid])

        p_loss = self.profile.stats_loss_prob
        p_stale = self.profile.stale_prob
        p_delay = self.profile.delay_prob
        noise = self.profile.noise_frac

        for switch, flows in self._by_switch(traffic):
            rng = self.profile.rng_for(epoch, switch)
            for _ in range(n_polls):
                self.polls_total += 1
                n_rounds += 1
                u = rng.random()
                if u < p_loss:
                    self.polls_lost += 1
                    n_lost += 1
                    for f in flows:
                        gaps[f.flow_id] = gaps.get(f.flow_id, 0) + 1
                    continue
                if u < p_loss + p_stale:
                    # Re-serve the last delivered counters; a switch that
                    # never answered cleanly has nothing to re-serve, so
                    # the poll degenerates to a loss.
                    self.polls_stale += 1
                    n_stale += 1
                    cached = self._last_good.get(switch)
                    for f in flows:
                        if cached is not None and f.flow_id in cached:
                            samples.setdefault(f.flow_id, []).append(cached[f.flow_id])
                        else:
                            gaps[f.flow_id] = gaps.get(f.flow_id, 0) + 1
                    continue
                values = self._noisy_values(flows, rng, noise)
                if u < p_loss + p_stale + p_delay:
                    # The reply is in flight but late: it surfaces next
                    # epoch, and this epoch's poll window stays empty.
                    self.polls_delayed += 1
                    n_delayed += 1
                    self._pending.setdefault(epoch + 1, []).append(values)
                    for f in flows:
                        gaps[f.flow_id] = gaps.get(f.flow_id, 0) + 1
                    continue
                for fid in sorted(values):
                    samples.setdefault(fid, []).append(values[fid])
                self._last_good[switch] = values

        return ObservedBatch(
            epoch=epoch,
            samples=samples,
            gaps=gaps,
            n_polls=n_rounds,
            n_lost=n_lost,
            n_stale=n_stale,
            n_delayed=n_delayed,
        )

    def _noisy_values(self, flows, rng, noise: float) -> dict[str, float]:
        """True rates with bounded multiplicative counter error."""
        if noise > 0.0:
            eps = rng.uniform(-noise, noise, size=len(flows))
        else:
            eps = np.zeros(len(flows))
        return {
            f.flow_id: max(0.0, f.demand_bps * (1.0 + float(e)))
            for f, e in zip(flows, eps)
        }

    # -- monitor feeding ---------------------------------------------------------

    def feed(self, monitor, epoch: int, traffic: TrafficSet, n_polls: int = 1) -> ObservedBatch:
        """Collect one epoch and push it into a ``TrafficMonitor``.

        Delivered samples become observations; empty polls become
        recorded gaps, so the monitor's staleness accounting sees the
        difference between "no flow" and "no reply".
        """
        batch = self.collect(epoch, traffic, n_polls=n_polls)
        for fid in sorted(batch.samples):
            for rate in batch.samples[fid]:
                monitor.observe(fid, rate)
        for fid in sorted(batch.gaps):
            for _ in range(batch.gaps[fid]):
                monitor.observe_gap(fid)
        return batch

    def accounting(self) -> dict:
        """Cumulative poll-outcome counters (picklable sweep payload)."""
        return {
            "polls_total": self.polls_total,
            "polls_lost": self.polls_lost,
            "polls_stale": self.polls_stale,
            "polls_delayed": self.polls_delayed,
        }
