"""Imperfect-telemetry modelling for the SDN control plane.

The reproduction's controller originally assumed perfect observation:
every 2-s stats poll arrived intact and on time.  This package models
the telemetry a real OpenFlow controller gets — lost stats replies,
stale counters, bounded counter noise, late batches — as
seed-deterministic, picklable scenarios that replay through the sweep
executor exactly like :class:`~repro.faults.FaultSchedule` does for
device failures.
"""

from .collector import DegradedStatsCollector, ObservedBatch
from .profile import PERFECT_TELEMETRY, TelemetryProfile

__all__ = [
    "TelemetryProfile",
    "PERFECT_TELEMETRY",
    "DegradedStatsCollector",
    "ObservedBatch",
]
