"""Telemetry-degradation profiles: how imperfect the controller's view is.

The paper's POX controller "fetches flow statistics and link
utilization every 2 s with an openflow message" — and a real OpenFlow
control plane loses stats replies, reads stale counters, and receives
late batches.  A :class:`TelemetryProfile` parameterizes that
imperfection per switch poll:

* **loss** — the stats reply never arrives (the poll is a gap);
* **staleness** — the reply arrives but repeats the previous epoch's
  counters (a switch answering from an un-refreshed flow table);
* **noise** — counter values carry bounded multiplicative error
  (sampling skew between the 2-s windows);
* **delay** — the reply arrives one epoch late as a batch (congested
  control channel), so the optimizer sees it only after the fact.

Profiles are plain frozen data — picklable and seed-deterministic,
mirroring :class:`~repro.faults.FaultSchedule`'s contract — so
degraded-telemetry scenarios travel through the sweep executor and
hash stably into its result cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["TelemetryProfile", "PERFECT_TELEMETRY"]


def _stable_token(name: str) -> int:
    """A process-independent 32-bit token for a switch name (PYTHONHASHSEED
    must not leak into replay determinism, so ``hash()`` is out)."""
    return int(hashlib.sha256(name.encode()).hexdigest()[:8], 16)


@dataclass(frozen=True)
class TelemetryProfile:
    """Per-poll degradation probabilities for one scenario.

    The four probabilities partition each poll outcome:
    ``loss + stale + delay <= 1`` and the remainder is a clean delivery
    (with noise applied).  ``noise_frac`` bounds the multiplicative
    counter error: an observed rate is ``true * (1 + U(-n, +n))``.
    """

    stats_loss_prob: float = 0.0
    stale_prob: float = 0.0
    delay_prob: float = 0.0
    noise_frac: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("stats_loss_prob", "stale_prob", "delay_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name}={p} outside [0, 1]")
        total = self.stats_loss_prob + self.stale_prob + self.delay_prob
        if total > 1.0 + 1e-12:
            raise ConfigurationError(
                f"loss + stale + delay = {total} exceeds 1 (outcomes must partition)"
            )
        if not 0.0 <= self.noise_frac < 1.0:
            raise ConfigurationError(
                f"noise_frac={self.noise_frac} outside [0, 1) — a counter cannot "
                "lose more than its whole value"
            )

    @property
    def is_perfect(self) -> bool:
        """True when every poll is delivered clean — degradation off."""
        return (
            self.stats_loss_prob == 0.0
            and self.stale_prob == 0.0
            and self.delay_prob == 0.0
            and self.noise_frac == 0.0
        )

    def rng_for(self, epoch: int, switch: str) -> np.random.Generator:
        """The per-(epoch, switch) generator degradation draws come from.

        Keyed by content — ``(seed, epoch, switch-name digest)`` — so
        replay never depends on dict iteration order, topology object
        identity, or the set of other switches polled.
        """
        if epoch < 0:
            raise ConfigurationError(f"epoch must be >= 0, got {epoch}")
        ss = np.random.SeedSequence(
            entropy=[int(self.seed) & 0xFFFFFFFF, epoch, _stable_token(switch)]
        )
        return np.random.default_rng(ss)


#: The no-degradation profile: every poll delivered clean.
PERFECT_TELEMETRY = TelemetryProfile()
