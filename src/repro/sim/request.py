"""Request record flowing through the server simulator."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["Request"]


@dataclass(slots=True)
class Request:
    """One search (sub-)request at a server core.

    Attributes
    ----------
    rid:
        Unique id within a simulation run.
    arrival_time:
        When the request entered the core's queue (s).
    work:
        The request's *actual* reference work (s at f_ref).  Hidden from
        governors — they only know the work distribution.
    deadline:
        Absolute server-side completion deadline used for SLA
        accounting: ``arrival + (constraint − network latency)``.
    governor_deadline:
        The deadline the governor is told.  Equal to ``deadline`` for
        network-slack-aware governors; ``arrival + server_budget`` for
        schemes that assume a fixed split (Rubik).
    network_latency:
        The request's sampled *request-path* network latency (s).
    reply_latency:
        The sampled *reply-path* latency (s); part of the end-to-end
        SLA but — per Section IV-C's conservative rule — never part of
        the slack a governor sees.
    """

    rid: int
    arrival_time: float
    work: float
    deadline: float
    governor_deadline: float
    network_latency: float = 0.0
    reply_latency: float = 0.0

    # Runtime state, owned by the core simulator.
    start_time: float | None = None
    finish_time: float | None = None
    remaining_work: float = 0.0

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ConfigurationError(f"request {self.rid}: negative work {self.work}")
        if self.network_latency < 0 or self.reply_latency < 0:
            raise ConfigurationError(f"request {self.rid}: negative network latency")
        self.remaining_work = self.work

    @property
    def completed_work(self) -> float:
        """Reference work retired so far."""
        return self.work - self.remaining_work

    @property
    def sojourn(self) -> float:
        """Server time in system (queueing + service); finished requests only."""
        if self.finish_time is None:
            raise ConfigurationError(f"request {self.rid} has not finished")
        return self.finish_time - self.arrival_time

    @property
    def total_latency(self) -> float:
        """End-to-end latency: request path + server sojourn + reply."""
        return self.network_latency + self.sojourn + self.reply_latency

    @property
    def violated(self) -> bool:
        """True if the request finished past its (actual) deadline."""
        if self.finish_time is None:
            raise ConfigurationError(f"request {self.rid} has not finished")
        return self.finish_time > self.deadline + 1e-12
