"""Server-simulation runner — the paper's Fig. 12 experiment harness.

Drives a :class:`~repro.sim.server.MultiCoreServer` with an open-loop
Poisson search load, per-request network latencies (sampled from a
network model or a fixed sampler), and a chosen governor; reports
power, latency tails and violation rates.

Deadline wiring (Section IV-A / V-B2):

* request's **actual** deadline: ``arrival + (L − network_latency)``
  where ``L`` is the end-to-end tail-latency constraint;
* deadline shown to a **network-aware** governor: the actual deadline
  (it monitors per-request slack);
* deadline shown to a network-**oblivious** governor: ``arrival +
  server_budget`` — the fixed SLA split (e.g. 25 ms of a 30 ms
  constraint), regardless of what the network actually did.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..rng import ensure_rng, spawn
from ..server.service import ServiceModel
from ..stats import LatencySummary
from .engine import EventLoop
from .request import Request
from .server import MultiCoreServer

__all__ = ["ServerSimConfig", "ServerSimResult", "run_server_simulation", "constant_latency_sampler"]


def constant_latency_sampler(latency_s: float):
    """A network-latency sampler that always returns ``latency_s``."""
    if latency_s < 0:
        raise ConfigurationError("latency must be non-negative")

    def sample(n: int, rng) -> np.ndarray:
        if n < 0:
            raise ConfigurationError(f"sample count must be non-negative, got {n}")
        return np.full(n, latency_s, dtype=float)

    return sample


@dataclass(frozen=True)
class ServerSimConfig:
    """Parameters of one server-simulation run.

    ``utilization`` is per-core offered load at the maximum frequency;
    ``latency_constraint_s`` is the end-to-end SLA ``L``;
    ``server_budget_s`` is the fixed compute budget assumed by
    network-oblivious governors (defaults to ``L`` minus
    ``network_budget_s``).
    """

    utilization: float
    latency_constraint_s: float
    network_budget_s: float = 5e-3
    n_cores: int = 12
    duration_s: float = 30.0
    warmup_s: float = 2.0
    static_watts: float = 20.0
    seed: int = 0
    dispatch: str = "random"

    def __post_init__(self) -> None:
        if not 0.0 < self.utilization < 1.0:
            raise ConfigurationError(f"utilization {self.utilization} outside (0, 1)")
        if self.latency_constraint_s <= 0:
            raise ConfigurationError("latency constraint must be positive")
        if not 0.0 <= self.network_budget_s < self.latency_constraint_s:
            raise ConfigurationError("network budget must lie in [0, L)")
        if self.duration_s <= 0 or self.warmup_s < 0 or self.warmup_s >= self.duration_s:
            raise ConfigurationError("need 0 <= warmup < duration")

    @property
    def server_budget_s(self) -> float:
        return self.latency_constraint_s - self.network_budget_s


@dataclass(frozen=True)
class ServerSimResult:
    """Outcome of one run."""

    governor: str
    config: ServerSimConfig
    n_completed: int
    cpu_power_watts: float
    server_power_watts: float
    total_latency: LatencySummary
    sojourn: LatencySummary
    violation_rate: float
    mean_busy_frequency_hz: float
    mean_busy_fraction: float

    @property
    def meets_sla(self) -> bool:
        """True when the measured tail meets the constraint: the 95th
        percentile of end-to-end latency is within ``L`` (equivalently
        the violation rate is within 5 %)."""
        return self.total_latency.p95 <= self.config.latency_constraint_s * (1 + 1e-9)


def run_server_simulation(
    service_model: ServiceModel,
    governor_factory,
    config: ServerSimConfig,
    network_latency_sampler=None,
    governor_name: str | None = None,
    sleep_model=None,
    reply_latency_sampler=None,
    engine: str | None = None,
    stats_out: dict | None = None,
) -> ServerSimResult:
    """Simulate one server under one governor and one load level.

    ``governor_factory()`` must return a fresh
    :class:`~repro.policies.base.Governor` per call (one per core).
    ``network_latency_sampler(n, rng)`` returns per-request network
    latencies; ``None`` means a constant latency equal to half the
    network budget (an uncongested network).  ``sleep_model`` attaches a
    :class:`~repro.power.sleep.SleepStateModel` to every core
    (PowerNap-family baselines and hybrids).

    ``engine`` overrides the decision engine of every governor that
    supports one (``"tabulated"`` — the :mod:`repro.simfast` fast path
    — or ``"reference"``); ``None`` keeps each governor's own default.
    Governors without a ``set_engine`` method (max-frequency, oracle,
    TimeTrader) ignore the override.  ``engine="multipoint"`` routes
    the whole run through the lockstep engine of
    :mod:`repro.simfast.multipoint` (bit-identical to ``"tabulated"``;
    built for simulating many grid points in one pass).

    ``stats_out``, when given a dict, receives run instrumentation
    (``n_events`` processed by the event loop, ``n_decisions`` made by
    the governors) — the benchmark's events/s and decisions/s source.

    With a ``reply_latency_sampler``, each request also carries a
    reply-path latency: the end-to-end SLA (and the request's actual
    deadline) then accounts for ``request + sojourn + reply``, while
    governors keep seeing only the request slack — the paper's
    conservative Section IV-C rule.
    """
    if engine == "multipoint":
        # One-point lockstep run — genuinely exercises the multipoint
        # engine (same results, bit for bit, as "tabulated").
        from ..simfast.multipoint import MultipointPoint, run_multipoint_simulation

        return run_multipoint_simulation(
            service_model,
            [
                MultipointPoint(
                    config=config,
                    governor_factory=governor_factory,
                    governor_name=governor_name,
                )
            ],
            network_latency_sampler=network_latency_sampler,
            sleep_model=sleep_model,
            reply_latency_sampler=reply_latency_sampler,
            stats_out=stats_out,
        )[0]

    rng = ensure_rng(config.seed)
    arrival_rng, latency_rng, work_rng, dispatch_rng = spawn(rng, 4)
    if network_latency_sampler is None:
        network_latency_sampler = constant_latency_sampler(config.network_budget_s / 2.0)

    loop = EventLoop()

    def _make_governor():
        governor = governor_factory()
        if engine is not None and hasattr(governor, "set_engine"):
            governor.set_engine(engine)
        return governor

    # The first instance is probed for its class configuration
    # (``network_aware``, ``name``) and then handed to core 0 — calling
    # the factory an extra throwaway time would silently advance
    # stateful factories.
    probe_governor = _make_governor()
    first_governor = [probe_governor]

    def _governor_factory():
        return first_governor.pop() if first_governor else _make_governor()

    server = MultiCoreServer(
        loop,
        service_model,
        _governor_factory,
        n_cores=config.n_cores,
        static_watts=config.static_watts,
        seed_or_rng=dispatch_rng,
        sleep_model=sleep_model,
        dispatch=config.dispatch,
    )

    # Server-level Poisson arrivals: rate = n_cores * per-core rate.
    per_core_rate = service_model.arrival_rate_for_utilization(config.utilization)
    rate = per_core_rate * config.n_cores

    # Pre-draw in chunks to amortize RNG overhead; the buffers are
    # converted to plain lists once per refill so the per-arrival reads
    # are attribute-free C-level indexing (no numpy scalar boxing).
    chunk = 4096
    state = {"rid": 0, "i": chunk}  # force initial refill
    buffers: dict[str, list[float]] = {}

    def refill() -> None:
        netlat = np.asarray(network_latency_sampler(chunk, latency_rng), dtype=float)
        if reply_latency_sampler is not None:
            replat = np.asarray(reply_latency_sampler(chunk, latency_rng), dtype=float)
        else:
            replat = np.zeros(chunk)
        if np.any(netlat < 0) or np.any(replat < 0):
            raise ConfigurationError("network latency sampler returned negative values")
        buffers["gaps"] = arrival_rng.exponential(1.0 / rate, size=chunk).tolist()
        buffers["work"] = np.asarray(
            service_model.sample_work(chunk, work_rng), dtype=float
        ).tolist()
        buffers["netlat"] = netlat.tolist()
        buffers["replat"] = replat.tolist()
        state["i"] = 0

    network_aware = probe_governor.network_aware

    def next_arrival() -> None:
        if state["i"] >= chunk:
            refill()
        i = state["i"]
        state["i"] += 1
        now = loop.now
        net_latency = buffers["netlat"][i]
        reply_latency = buffers["replat"][i]
        # Actual SLA deadline covers the full round trip; the governor's
        # deadline never includes the reply (request slack only).
        deadline = now + config.latency_constraint_s - net_latency - reply_latency
        governor_deadline = (
            now + config.latency_constraint_s - net_latency
            if network_aware
            else now + config.server_budget_s
        )
        request = Request(
            rid=state["rid"],
            arrival_time=now,
            work=buffers["work"][i],
            deadline=deadline,
            governor_deadline=governor_deadline,
            network_latency=net_latency,
            reply_latency=reply_latency,
        )
        state["rid"] += 1
        server.submit(request)
        # The arrival chain is never cancelled: skip handle allocation.
        loop.schedule_fast_after(buffers["gaps"][i], next_arrival)

    refill()
    loop.schedule_fast_after(buffers["gaps"][state["i"]], next_arrival)
    state["i"] += 1
    # Simulate the warmup, then restart the power/busy meters so the
    # reported power is steady-state (feedback governors ramp in).
    loop.run_until(config.warmup_s)
    server.reset_statistics()
    loop.run_until(config.duration_s)

    if stats_out is not None:
        stats_out["n_events"] = loop.n_processed
        stats_out["n_decisions"] = sum(
            getattr(core.governor, "n_decisions", 0) for core in server.cores
        )

    # One pass over completed requests into a preallocated array, then
    # vectorized latency/violation math — no per-request property calls
    # or repeated list comprehensions.
    all_completed = server.completed_requests()
    fields = np.empty((len(all_completed), 4))
    n = 0
    warmup = config.warmup_s
    for r in all_completed:
        if r.arrival_time >= warmup:
            row = fields[n]
            row[0] = r.arrival_time
            row[1] = r.finish_time
            row[2] = r.network_latency + r.reply_latency
            row[3] = r.deadline
            n += 1
    if n == 0:
        raise ConfigurationError(
            "no requests completed after warmup; increase duration or load"
        )
    fields = fields[:n]
    sojourns = fields[:, 1] - fields[:, 0]
    totals = sojourns + fields[:, 2]
    violations = fields[:, 1] > fields[:, 3] + 1e-12
    busy = np.array(server.busy_fractions())
    freqs = np.array([c.mean_busy_frequency for c in server.cores])
    busy_total = busy.sum()
    mean_freq = float(np.dot(busy, freqs) / busy_total) if busy_total > 0 else 0.0

    return ServerSimResult(
        governor=governor_name or probe_governor.name,
        config=config,
        n_completed=n,
        cpu_power_watts=server.cpu_power(),
        server_power_watts=server.total_power(),
        total_latency=LatencySummary.from_samples(totals),
        sojourn=LatencySummary.from_samples(sojourns),
        violation_rate=float(violations.mean()),
        mean_busy_frequency_hz=mean_freq,
        mean_busy_fraction=float(busy.mean()),
    )
