"""Discrete-event server simulation: engine, cores, servers, runner."""

from .cluster import ClusterResult, ClusterSimulator
from .core import CoreSimulator
from .engine import EventHandle, EventLoop
from .request import Request
from .runner import (
    ServerSimConfig,
    ServerSimResult,
    constant_latency_sampler,
    run_server_simulation,
)
from .server import MultiCoreServer

__all__ = [
    "EventLoop",
    "EventHandle",
    "ClusterSimulator",
    "ClusterResult",
    "Request",
    "CoreSimulator",
    "MultiCoreServer",
    "ServerSimConfig",
    "ServerSimResult",
    "run_server_simulation",
    "constant_latency_sampler",
]
