"""Single-core server simulator.

One CPU core serving a queue of search requests under a DVFS governor:

* work-conserving, non-preemptive service (a request, once started,
  runs to completion — but its *speed* may change mid-service when the
  governor reacts to arrivals);
* governor consulted at every arrival and departure instance, exactly
  the decision points of Section III-B;
* optional earliest-deadline-first queue ordering (EPRONS-Server);
* per-core energy metering: active power at the current frequency
  while busy, idle power otherwise.

Work accounting uses *reference work* (see
:mod:`repro.server.freqmodel`): at frequency ``f`` the core retires
``1 / speed_factor(f)`` units of reference work per second.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..power.meter import EnergyMeter
from ..power.models import CorePowerModel
from ..policies.base import Governor, QueueSnapshot
from ..server.service import ServiceModel
from .engine import EventHandle, EventLoop
from .request import Request

__all__ = ["CoreSimulator"]


class CoreSimulator:
    """One core + queue + governor, attached to an :class:`EventLoop`."""

    def __init__(
        self,
        loop: EventLoop,
        service_model: ServiceModel,
        governor: Governor,
        power_model: CorePowerModel | None = None,
        core_id: int = 0,
        sleep_model=None,
    ):
        self.loop = loop
        self.service_model = service_model
        self.governor = governor
        # Incremental governors (tabulated VP engines) keep their own
        # deadline mirror: the core feeds queue transitions through the
        # on_enqueue/on_service_* hooks and decides via
        # select_frequency_fast, skipping the snapshot rebuild.
        self._incremental = bool(getattr(governor, "incremental", False))
        self.power_model = power_model or CorePowerModel()
        self.core_id = core_id
        #: Optional :class:`~repro.power.sleep.SleepStateModel` — when
        #: set, an idle core descends into deep sleep (PowerNap-family
        #: baselines) and pays a wake latency on the next arrival.
        self.sleep_model = sleep_model
        self._asleep = False
        self._sleep_entry: EventHandle | None = None
        self._wake_pending = False

        self.queue: list[Request] = []
        self.in_service: Request | None = None
        self.frequency: float = 0.0  # meaningful only while busy
        self._service_started_at: float | None = None
        self._completion: EventHandle | None = None
        self.meter = EnergyMeter(self.power_model.idle_watts, loop.now)

        self.completed: list[Request] = []
        self._busy_time = 0.0
        self._weighted_freq_time = 0.0  # integral of frequency over busy time
        self._stats_start = loop.now

        if governor.timer_period_s is not None:
            self._schedule_timer()

    # -- public API --------------------------------------------------------------

    def submit(self, request: Request) -> None:
        """A request arrives at the core (an arrival instance)."""
        self.queue.append(request)
        if self.governor.reorders_queue:
            self.queue.sort(key=lambda r: (r.governor_deadline, r.rid))
        if self._incremental:
            self.governor.on_enqueue(request.governor_deadline)
        if self.in_service is None:
            if self._wake_pending:
                return  # the scheduled wake will drain the queue
            if self._sleep_entry is not None:
                # Entry to deep sleep not yet complete: abort it and
                # serve immediately (no wake penalty was earned yet).
                EventLoop.cancel(self._sleep_entry)
                self._sleep_entry = None
            if self._asleep:
                self._begin_wake()
                return
            self._start_next()
        else:
            self._sync_in_service_progress()
            self._apply_frequency(self._ask_governor())

    @property
    def n_in_system(self) -> int:
        return len(self.queue) + (1 if self.in_service is not None else 0)

    @property
    def busy_fraction(self) -> float:
        """Fraction of measured time the core was serving a request."""
        elapsed = self.loop.now - self._stats_start
        return self._busy_time / elapsed if elapsed > 0 else 0.0

    def reset_statistics(self) -> None:
        """Discard accumulated power/busy statistics (end of warmup).

        In-flight and queued requests are unaffected; only the meters
        restart, so steady-state measurements exclude the ramp-in of
        feedback governors.
        """
        self._sync_in_service_progress()
        self._busy_time = 0.0
        self._weighted_freq_time = 0.0
        self._stats_start = self.loop.now
        self.meter.reset(self.loop.now)

    @property
    def mean_busy_frequency(self) -> float:
        """Time-average frequency while busy (0 if never busy)."""
        return self._weighted_freq_time / self._busy_time if self._busy_time > 0 else 0.0

    def average_power(self) -> float:
        """Average core power (W) up to the current simulation time."""
        self._sync_in_service_progress()
        return self.meter.average_power(self.loop.now)

    # -- internals ------------------------------------------------------------------

    def _snapshot(self) -> QueueSnapshot:
        if self.in_service is not None:
            completed = self.in_service.completed_work
            deadline = self.in_service.governor_deadline
            works = (self.in_service.remaining_work,)
        else:
            completed = None
            deadline = None
            works = ()
        return QueueSnapshot(
            now=self.loop.now,
            in_service_completed_work=completed,
            in_service_deadline=deadline,
            queued_deadlines=tuple(r.governor_deadline for r in self.queue),
            actual_remaining_works=works + tuple(r.work for r in self.queue),
        )

    def _ask_governor(self) -> float:
        if self._incremental:
            in_service = self.in_service
            return self.governor.select_frequency_fast(
                self.loop.now,
                None if in_service is None else in_service.completed_work,
            )
        return self.governor.select_frequency(self._snapshot())

    def _start_next(self) -> None:
        if self.in_service is not None:
            raise SimulationError("core started a request while busy")
        if not self.queue:
            return
        request = self.queue.pop(0)
        if self._incremental:
            self.governor.on_service_start()
        request.start_time = self.loop.now
        self.in_service = request
        self._service_started_at = self.loop.now
        self._apply_frequency(self._ask_governor(), force=True)

    def _sync_in_service_progress(self) -> None:
        """Fold the elapsed service segment into the request's progress
        and the busy-time/energy accounting."""
        if self.in_service is None or self._service_started_at is None:
            self.meter.advance(self.loop.now)
            return
        elapsed = self.loop.now - self._service_started_at
        if elapsed > 0:
            speed = self.service_model.frequency_model.speed_factor(self.frequency)
            retired = elapsed / speed
            self.in_service.remaining_work = max(
                0.0, self.in_service.remaining_work - retired
            )
            self._busy_time += elapsed
            self._weighted_freq_time += elapsed * self.frequency
        self._service_started_at = self.loop.now
        self.meter.advance(self.loop.now)

    def _apply_frequency(self, frequency_hz: float, force: bool = False) -> None:
        """Switch the core to ``frequency_hz`` and reschedule completion."""
        if self.in_service is None:
            raise SimulationError("cannot set a service frequency on an idle core")
        if frequency_hz <= 0:
            raise SimulationError(f"governor returned invalid frequency {frequency_hz}")
        if not force and abs(frequency_hz - self.frequency) < 1e-6:
            return
        self.frequency = frequency_hz
        self.meter.set_power(self.power_model.active_power(frequency_hz), self.loop.now)
        if self._completion is not None:
            EventLoop.cancel(self._completion)
        speed = self.service_model.frequency_model.speed_factor(frequency_hz)
        remaining_time = self.in_service.remaining_work * speed
        self._completion = self.loop.schedule_after(remaining_time, self._complete)

    def _complete(self) -> None:
        """Departure instance: the in-service request finishes."""
        request = self.in_service
        if request is None:
            raise SimulationError("completion fired on an idle core")
        self._sync_in_service_progress()
        request.remaining_work = 0.0
        request.finish_time = self.loop.now
        self.completed.append(request)
        self.governor.on_complete(
            total_latency_s=request.total_latency,
            deadline_met=not request.violated,
            now=self.loop.now,
        )
        self.in_service = None
        self._service_started_at = None
        self._completion = None
        if self._incremental:
            self.governor.on_service_end()
        if self.queue:
            self._start_next()
        else:
            self.frequency = 0.0
            self.meter.set_power(self.power_model.idle_watts, self.loop.now)
            if self.sleep_model is not None:
                self._sleep_entry = self.loop.schedule_after(
                    self.sleep_model.entry_latency_s, self._enter_sleep
                )

    def _enter_sleep(self) -> None:
        self._sleep_entry = None
        self._asleep = True
        self.meter.set_power(self.sleep_model.sleep_watts, self.loop.now)

    def _begin_wake(self) -> None:
        """Start the wake transition of a sleeping core."""
        self._asleep = False
        self._wake_pending = True
        # The wake transition itself draws idle-level power.
        self.meter.set_power(self.power_model.idle_watts, self.loop.now)
        self.loop.schedule_fast_after(self.sleep_model.wake_latency_s, self._finish_wake)

    def _finish_wake(self) -> None:
        self._wake_pending = False
        if self.queue and self.in_service is None:
            self._start_next()

    def _schedule_timer(self) -> None:
        period = self.governor.timer_period_s
        assert period is not None

        def fire() -> None:
            self.governor.on_timer(self.loop.now)
            if self.in_service is not None:
                self._sync_in_service_progress()
                self._apply_frequency(self._ask_governor())
            self.loop.schedule_fast_after(period, fire)

        self.loop.schedule_fast_after(period, fire)
