"""Partition–aggregation cluster simulator.

The paper's search-engine simulator (Section V-A): one aggregator host
broadcasts every user query to the 15 Index Serving Nodes; each ISN
serves its sub-query under a DVFS governor; the query completes when
the slowest reply returns.  This module couples the per-core DES with
the flow-level network model:

* a sub-request reaches ISN *i* after that ISN's *request-flow* network
  latency (sampled from the consolidated network);
* its server deadline is ``query_arrival + L − request_latency`` — the
  "request slack only" rule of Section IV-C;
* the query's end-to-end latency adds the reply-flow latency of each
  ISN and takes the max.

Aggregator compute (result merging) is negligible next to ISN service
times and is not simulated; the aggregator still counts as a server for
static power in the joint accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..control.latency_monitor import LatencyMonitor
from ..errors import ConfigurationError
from ..power.models import CorePowerModel
from ..rng import ensure_rng, spawn
from ..stats import LatencySummary
from ..workloads.search import SearchWorkload
from .engine import EventLoop
from .request import Request
from .server import MultiCoreServer

__all__ = ["ClusterResult", "ClusterSimulator"]

_POOL = 4096


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of one cluster run."""

    n_queries_completed: int
    query_latency: LatencySummary
    sub_request_violation_rate: float
    cpu_power_per_isn_watts: float
    mean_busy_frequency_hz: float
    n_isns: int
    n_cores_per_isn: int

    def datacenter_server_power(
        self, n_cores_per_server: int = 12, static_watts: float = 20.0, idle_core_watts: float = 1.0
    ) -> float:
        """Scale the measured per-ISN CPU power to the paper's fleet:
        16 servers x 12 cores.  Simulated cores are representative of
        all cores at the same per-core load; the aggregator's cores are
        charged idle power."""
        per_core = self.cpu_power_per_isn_watts / self.n_cores_per_isn
        isn_watts = static_watts + n_cores_per_server * per_core
        agg_watts = static_watts + n_cores_per_server * idle_core_watts
        return self.n_isns * isn_watts + agg_watts


class ClusterSimulator:
    """Drives one aggregator + N ISNs over a consolidated network."""

    def __init__(
        self,
        workload: SearchWorkload,
        governor_factory,
        latency_monitor: LatencyMonitor,
        utilization: float = 0.3,
        n_cores_per_isn: int = 1,
        core_power_model: CorePowerModel | None = None,
        seed_or_rng=None,
    ):
        if not 0.0 < utilization < 1.0:
            raise ConfigurationError(f"utilization {utilization} outside (0, 1)")
        self.workload = workload
        self.utilization = utilization
        self.n_cores_per_isn = n_cores_per_isn
        rng = ensure_rng(seed_or_rng)
        self._arrival_rng, self._net_rng, self._work_rng, dispatch_rng = spawn(rng, 4)

        self.loop = EventLoop()
        # Probe the first instance for ``network_aware`` and hand it to
        # the first ISN's core 0 instead of discarding it, so stateful
        # governor factories are not silently advanced by one call.
        probe = governor_factory()
        self._network_aware = probe.network_aware
        first_governor = [probe]

        def _governor_factory():
            return first_governor.pop() if first_governor else governor_factory()

        dispatch_rngs = spawn(dispatch_rng, workload.n_isns)
        self.isns = {
            isn: MultiCoreServer(
                self.loop,
                workload.service_model,
                _governor_factory,
                n_cores=n_cores_per_isn,
                core_power_model=core_power_model,
                seed_or_rng=dispatch_rngs[i],
                server_id=i,
            )
            for i, isn in enumerate(workload.isns)
        }

        # Pre-drawn network-latency pools per ISN (request and reply).
        agg = workload.aggregator
        self._req_pool = {}
        self._rep_pool = {}
        for isn in workload.isns:
            self._req_pool[isn] = latency_monitor.network_model.sample_flow_latency(
                f"req:{agg}->{isn}", _POOL, self._net_rng
            )
            self._rep_pool[isn] = latency_monitor.network_model.sample_flow_latency(
                f"rep:{isn}->{agg}", _POOL, self._net_rng
            )

        # Per-query bookkeeping: rid -> (query id, isn); query id ->
        # (arrival, per-isn reply latencies are resolved after the run).
        self._rid = 0
        self._query_arrival: list[float] = []
        self._req_meta: dict[int, tuple[int, str]] = {}

    # -- workload ---------------------------------------------------------------------

    def query_rate(self) -> float:
        """Query arrival rate that loads each ISN core to the target
        utilization (every query visits every ISN)."""
        per_core = self.workload.service_model.arrival_rate_for_utilization(self.utilization)
        return per_core * self.n_cores_per_isn

    def run(self, duration_s: float, warmup_s: float = 2.0) -> ClusterResult:
        """Simulate ``duration_s`` seconds of query traffic."""
        if duration_s <= warmup_s:
            raise ConfigurationError("duration must exceed warmup")
        rate = self.query_rate()
        L = self.workload.latency_constraint_s
        budget = self.workload.server_budget_s
        model = self.workload.service_model

        def next_query() -> None:
            now = self.loop.now
            qid = len(self._query_arrival)
            self._query_arrival.append(now)
            works = model.sample_work(len(self.isns), self._work_rng)
            for (isn, server), work in zip(self.isns.items(), works):
                req_lat = float(
                    self._req_pool[isn][self._net_rng.integers(_POOL)]
                )
                deadline = now + L - req_lat
                governor_deadline = (
                    deadline if self._network_aware else now + req_lat + budget
                )
                rid = self._rid
                self._rid += 1
                self._req_meta[rid] = (qid, isn)
                request = Request(
                    rid=rid,
                    arrival_time=now + req_lat,
                    work=float(work),
                    deadline=deadline,
                    governor_deadline=governor_deadline,
                    network_latency=req_lat,
                )
                self.loop.schedule(
                    now + req_lat, lambda s=server, r=request: s.submit(r)
                )
            self.loop.schedule_after(
                float(self._arrival_rng.exponential(1.0 / rate)), next_query
            )

        self.loop.schedule_after(
            float(self._arrival_rng.exponential(1.0 / rate)), next_query
        )
        self.loop.run_until(duration_s)
        return self._collect(warmup_s)

    # -- results -----------------------------------------------------------------------

    def _collect(self, warmup_s: float) -> ClusterResult:
        n_queries = len(self._query_arrival)
        completion = np.full(n_queries, -np.inf)
        replies = np.zeros(n_queries, dtype=int)
        violations = []
        cpu_power = 0.0
        busy = []
        freqs = []
        for isn, server in self.isns.items():
            cpu_power += server.cpu_power()
            for core in server.cores:
                busy.append(core.busy_fraction)
                freqs.append(core.mean_busy_frequency)
            for r in server.completed_requests():
                qid, _ = self._req_meta[r.rid]
                rep_lat = float(self._rep_pool[isn][self._net_rng.integers(_POOL)])
                finish = r.finish_time + rep_lat
                completion[qid] = max(completion[qid], finish)
                replies[qid] += 1
                if self._query_arrival[qid] >= warmup_s:
                    violations.append(r.violated)

        done = replies == len(self.isns)
        arrivals = np.asarray(self._query_arrival)
        mask = done & (arrivals >= warmup_s)
        if not mask.any():
            raise ConfigurationError("no queries completed after warmup")
        latencies = completion[mask] - arrivals[mask]

        busy_arr = np.asarray(busy)
        freq_arr = np.asarray(freqs)
        total_busy = busy_arr.sum()
        mean_freq = float(np.dot(busy_arr, freq_arr) / total_busy) if total_busy > 0 else 0.0
        return ClusterResult(
            n_queries_completed=int(mask.sum()),
            query_latency=LatencySummary.from_samples(latencies),
            sub_request_violation_rate=float(np.mean(violations)) if violations else 0.0,
            cpu_power_per_isn_watts=cpu_power / len(self.isns),
            mean_busy_frequency_hz=mean_freq,
            n_isns=len(self.isns),
            n_cores_per_isn=self.n_cores_per_isn,
        )
