"""Multi-core server simulator.

A server is ``n_cores`` independent :class:`~repro.sim.core.CoreSimulator`
instances sharing one event loop.  Arriving requests are dispatched
uniformly at random (splitting the server's Poisson stream into
independent per-core Poisson streams, the standard per-core queue model
the paper's per-request governors assume).  Each core gets its *own*
governor instance — governor state (convolution caches, feedback
windows) is per-core.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..power.models import CorePowerModel, ServerPowerModel
from ..rng import ensure_rng
from ..server.service import ServiceModel
from .core import CoreSimulator
from .engine import EventLoop
from .request import Request

__all__ = ["MultiCoreServer"]


#: Supported dispatch disciplines.
DISPATCH_POLICIES = ("random", "round-robin", "jsq")


class MultiCoreServer:
    """``n_cores`` cores + governors behind a request dispatcher.

    Dispatch disciplines:

    * ``"random"`` (default) — uniform random core; splits the server's
      Poisson stream into independent per-core Poisson streams, the
      per-core-queue model the paper's governors assume;
    * ``"round-robin"`` — cyclic; thins each core's arrival stream into
      a more regular (Erlang) process;
    * ``"jsq"`` — join-the-shortest-queue; better tails at the cost of
      correlated queues (an ablation of the random-dispatch assumption).
    """

    def __init__(
        self,
        loop: EventLoop,
        service_model: ServiceModel,
        governor_factory,
        n_cores: int = 12,
        core_power_model: CorePowerModel | None = None,
        static_watts: float = 20.0,
        seed_or_rng=None,
        server_id: int = 0,
        sleep_model=None,
        dispatch: str = "random",
    ):
        if n_cores <= 0:
            raise ConfigurationError(f"n_cores must be positive, got {n_cores}")
        if dispatch not in DISPATCH_POLICIES:
            raise ConfigurationError(
                f"dispatch must be one of {DISPATCH_POLICIES}, got {dispatch!r}"
            )
        self.loop = loop
        self.service_model = service_model
        self.n_cores = n_cores
        self.static_watts = static_watts
        self.server_id = server_id
        self._rng = ensure_rng(seed_or_rng)
        core_power_model = core_power_model or CorePowerModel()
        self.cores = [
            CoreSimulator(
                loop,
                service_model,
                governor_factory(),
                power_model=core_power_model,
                core_id=i,
                sleep_model=sleep_model,
            )
            for i in range(n_cores)
        ]
        self._power_model = ServerPowerModel(
            core_model=core_power_model, n_cores=n_cores, static_watts=static_watts
        )
        self.dispatch = dispatch
        self._rr_next = 0

    def submit(self, request: Request) -> CoreSimulator:
        """Dispatch a request to a core per the configured discipline."""
        if self.dispatch == "random":
            core = self.cores[int(self._rng.integers(self.n_cores))]
        elif self.dispatch == "round-robin":
            core = self.cores[self._rr_next]
            self._rr_next = (self._rr_next + 1) % self.n_cores
        else:  # jsq
            core = min(self.cores, key=lambda c: (c.n_in_system, c.core_id))
        core.submit(request)
        return core

    # -- results -----------------------------------------------------------------

    def completed_requests(self) -> list[Request]:
        """All finished requests across cores, in completion order."""
        out: list[Request] = []
        for core in self.cores:
            out.extend(core.completed)
        out.sort(key=lambda r: (r.finish_time, r.rid))
        return out

    def cpu_power(self) -> float:
        """Average CPU package power (W) over the run so far."""
        return float(sum(core.average_power() for core in self.cores))

    def total_power(self) -> float:
        """Average whole-server power (W): static + CPU."""
        return self.static_watts + self.cpu_power()

    def busy_fractions(self) -> list[float]:
        return [core.busy_fraction for core in self.cores]

    def reset_statistics(self) -> None:
        """Discard every core's accumulated statistics (end of warmup)."""
        for core in self.cores:
            core.reset_statistics()
