"""Minimal discrete-event simulation engine.

A binary-heap event loop with cancellable handles — all the simulator
needs.  Events at equal timestamps fire in scheduling order (a stable
sequence number breaks ties), which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from ..errors import SimulationError

__all__ = ["EventHandle", "EventLoop"]


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: object = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Opaque handle returned by :meth:`EventLoop.schedule`."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Entry):
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled


class EventLoop:
    """A deterministic event loop over (time, callback) pairs."""

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[_Entry] = []
        self._seq = itertools.count()
        self._n_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def n_processed(self) -> int:
        """Number of events executed so far."""
        return self._n_processed

    @property
    def n_pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule(self, time: float, callback) -> EventHandle:
        """Schedule ``callback()`` at absolute ``time`` (>= now)."""
        if time < self._now - 1e-12:
            raise SimulationError(f"event scheduled in the past: {time} < {self._now}")
        entry = _Entry(max(time, self._now), next(self._seq), callback)
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def schedule_after(self, delay: float, callback) -> EventHandle:
        """Schedule ``callback()`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, callback)

    @staticmethod
    def cancel(handle: EventHandle) -> None:
        """Cancel a scheduled event (no-op if already fired)."""
        handle._entry.cancelled = True

    def step(self) -> bool:
        """Execute the next live event; returns False when none remain."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            self._now = entry.time
            self._n_processed += 1
            entry.callback()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Process events up to and including ``end_time``.

        The clock is advanced to ``end_time`` afterwards, so meters can
        integrate trailing idle periods.
        """
        if end_time < self._now:
            raise SimulationError(f"run_until moving backwards: {end_time} < {self._now}")
        while self._heap:
            entry = self._heap[0]
            if entry.time > end_time:
                break
            heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            self._now = entry.time
            self._n_processed += 1
            entry.callback()
        self._now = end_time

    def run_to_completion(self, max_events: int | None = None) -> None:
        """Drain every event; ``max_events`` guards against runaways."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
