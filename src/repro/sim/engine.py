"""Minimal discrete-event simulation engine.

A binary-heap event loop with cancellable handles — all the simulator
needs.  Events at equal timestamps fire in scheduling order (a stable
sequence number breaks ties), which keeps runs deterministic.

The heap holds plain ``(time, seq, callback)`` tuples so ordering is
resolved by C-level tuple comparison instead of generated dataclass
``__lt__`` calls — the engine's hottest path.  Cancellation is a
side-table of sequence numbers (events are cheap to schedule, rare to
cancel), and a live-event set keeps :attr:`EventLoop.n_pending` O(1).

Events that are never cancelled (arrival chains, periodic timers —
the bulk of a server simulation) can skip the handle machinery
entirely via :meth:`EventLoop.schedule_fast` /
:meth:`EventLoop.schedule_fast_after`: no :class:`EventHandle`
allocation, no live-set bookkeeping per event, just a heap push.  Fast
and handle-carrying events share one sequence counter, so relative
firing order is identical whichever variant scheduled them.
"""

from __future__ import annotations

import heapq
import itertools

from ..errors import SimulationError

__all__ = ["EventHandle", "EventLoop"]


class EventHandle:
    """Opaque handle returned by :meth:`EventLoop.schedule`."""

    __slots__ = ("_time", "_seq", "_loop", "_cancelled")

    def __init__(self, time: float, seq: int, loop: "EventLoop"):
        self._time = time
        self._seq = seq
        self._loop = loop
        self._cancelled = False

    @property
    def time(self) -> float:
        return self._time

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class EventLoop:
    """A deterministic event loop over (time, callback) pairs."""

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[tuple[float, int, object]] = []
        self._seq = itertools.count()
        self._n_processed = 0
        # Seqs scheduled but not yet fired/cancelled; seqs cancelled but
        # not yet popped off the heap.
        self._pending: set[int] = set()
        self._skip: set[int] = set()
        # Count of live fast-path events (no handle, never cancellable).
        self._n_fast = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def n_processed(self) -> int:
        """Number of events executed so far."""
        return self._n_processed

    @property
    def n_pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._pending) + self._n_fast

    def schedule(self, time: float, callback) -> EventHandle:
        """Schedule ``callback()`` at absolute ``time`` (>= now)."""
        if time < self._now - 1e-12:
            raise SimulationError(f"event scheduled in the past: {time} < {self._now}")
        time = max(time, self._now)
        seq = next(self._seq)
        heapq.heappush(self._heap, (time, seq, callback))
        self._pending.add(seq)
        return EventHandle(time, seq, self)

    def schedule_after(self, delay: float, callback) -> EventHandle:
        """Schedule ``callback()`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, callback)

    def schedule_fast(self, time: float, callback) -> None:
        """Schedule a non-cancellable ``callback()`` at absolute ``time``.

        Same ordering semantics as :meth:`schedule` (shared sequence
        counter) but returns no handle and touches no per-event sets —
        the cheap variant for events that always fire.
        """
        if time < self._now - 1e-12:
            raise SimulationError(f"event scheduled in the past: {time} < {self._now}")
        heapq.heappush(self._heap, (max(time, self._now), next(self._seq), callback))
        self._n_fast += 1

    def schedule_fast_after(self, delay: float, callback) -> None:
        """Non-cancellable :meth:`schedule_after`."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule_fast(self._now + delay, callback)

    @staticmethod
    def cancel(handle: EventHandle) -> None:
        """Cancel a scheduled event (no-op if already fired)."""
        if handle._cancelled:
            return
        handle._cancelled = True
        loop = handle._loop
        seq = handle._seq
        if seq in loop._pending:
            loop._pending.discard(seq)
            loop._skip.add(seq)

    def step(self) -> bool:
        """Execute the next live event; returns False when none remain."""
        while self._heap:
            time, seq, callback = heapq.heappop(self._heap)
            if seq in self._skip:
                self._skip.discard(seq)
                continue
            if seq in self._pending:
                self._pending.discard(seq)
            else:
                self._n_fast -= 1
            self._now = time
            self._n_processed += 1
            callback()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Process events up to and including ``end_time``.

        The clock is advanced to ``end_time`` afterwards, so meters can
        integrate trailing idle periods.
        """
        if end_time < self._now:
            raise SimulationError(f"run_until moving backwards: {end_time} < {self._now}")
        heap = self._heap
        skip = self._skip
        pending = self._pending
        while heap:
            if heap[0][0] > end_time:
                break
            time, seq, callback = heapq.heappop(heap)
            if seq in skip:
                skip.discard(seq)
                continue
            if seq in pending:
                pending.discard(seq)
            else:
                self._n_fast -= 1
            self._now = time
            self._n_processed += 1
            callback()
        self._now = end_time

    def run_to_completion(self, max_events: int | None = None) -> None:
        """Drain every event; ``max_events`` guards against runaways."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
