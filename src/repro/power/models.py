"""Power models for switches, links, CPU cores and servers.

All constants trace back to measurements reported in the paper:

* **Core power** — a 12-core Xeon E5-2697 v2 measured at 1.4 W per core
  at the minimum frequency (1.2 GHz) and 4.4 W at the maximum (2.7 GHz)
  (Section V-A).  We fit ``P(f) = static + alpha * f^3`` through those
  two endpoints, the standard CMOS dynamic-power shape.
* **Server static power** — 20 W (motherboard, memory, ...) based on
  the Huawei XH320 V2 dynamic/static ratio [22].
* **Switch power** — the paper measures an HPE E3800 J9574A at 97.5 W
  idle with at most +0.59 W from 0 to 100 % link utilization (Fig. 8),
  i.e. utilization-independent, and uses the 36 W 4-port switch from
  [23] for the scaled-up power results (Fig. 13/15).  Both models are
  provided; the flat 36 W model is the default in experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..units import GHZ

__all__ = [
    "CorePowerModel",
    "ServerPowerModel",
    "SwitchPowerModel",
    "HPESwitchPowerModel",
    "LinkPowerModel",
    "DEFAULT_CORE_POWER",
    "DEFAULT_SERVER_POWER",
    "DEFAULT_SWITCH_POWER",
    "DEFAULT_LINK_POWER",
]


@dataclass(frozen=True)
class CorePowerModel:
    """Per-core CPU power as a function of operating frequency.

    ``P_active(f) = static_watts + alpha * (f / 1 GHz)**3``

    Parameters
    ----------
    static_watts:
        Frequency-independent component of the *active* core power.
    alpha:
        Coefficient of the cubic dynamic term, in Watts per GHz^3.
    idle_watts:
        Power drawn by a core with an empty queue (shallow idle; the
        paper's servers do not use deep sleep states, DVFS only).
    """

    static_watts: float = 1.111
    alpha: float = 0.1671
    idle_watts: float = 1.0

    def __post_init__(self) -> None:
        if self.static_watts < 0 or self.alpha < 0 or self.idle_watts < 0:
            raise ConfigurationError("core power parameters must be non-negative")

    def active_power(self, frequency_hz: float) -> float:
        """Power (W) of a core actively processing at ``frequency_hz``."""
        if frequency_hz <= 0:
            raise ConfigurationError(f"frequency must be positive, got {frequency_hz}")
        f_ghz = frequency_hz / GHZ
        return self.static_watts + self.alpha * f_ghz**3

    def active_power_array(self, frequencies_hz) -> np.ndarray:
        """Vectorized :meth:`active_power` over an array of frequencies."""
        f = np.asarray(frequencies_hz, dtype=float)
        if np.any(f <= 0):
            raise ConfigurationError("frequencies must be positive")
        return self.static_watts + self.alpha * (f / GHZ) ** 3

    def energy(self, frequency_hz: float, busy_seconds: float, idle_seconds: float = 0.0) -> float:
        """Energy (J) for ``busy_seconds`` active at ``frequency_hz``
        plus ``idle_seconds`` idle."""
        if busy_seconds < 0 or idle_seconds < 0:
            raise ConfigurationError("durations must be non-negative")
        return self.active_power(frequency_hz) * busy_seconds + self.idle_watts * idle_seconds

    @classmethod
    def from_endpoints(
        cls,
        f_min_hz: float,
        p_min_watts: float,
        f_max_hz: float,
        p_max_watts: float,
        idle_watts: float = 1.0,
    ) -> "CorePowerModel":
        """Fit ``static + alpha f^3`` exactly through two measured points.

        The defaults of this class are ``from_endpoints(1.2 GHz, 1.4 W,
        2.7 GHz, 4.4 W)`` — the paper's Xeon E5-2697 v2 measurements.
        """
        if f_max_hz <= f_min_hz:
            raise ConfigurationError("f_max must exceed f_min")
        if p_max_watts <= p_min_watts:
            raise ConfigurationError("p_max must exceed p_min")
        lo = (f_min_hz / GHZ) ** 3
        hi = (f_max_hz / GHZ) ** 3
        alpha = (p_max_watts - p_min_watts) / (hi - lo)
        static = p_min_watts - alpha * lo
        if static < 0:
            raise ConfigurationError(
                "endpoint fit produced negative static power; measurements "
                "are inconsistent with a cubic dynamic-power model"
            )
        return cls(static_watts=static, alpha=alpha, idle_watts=idle_watts)


@dataclass(frozen=True)
class ServerPowerModel:
    """Whole-server power: static platform power plus per-core power.

    The paper's simulated servers have a 12-core CPU and 20 W of static
    (non-CPU) power.
    """

    core_model: CorePowerModel = field(default_factory=CorePowerModel)
    n_cores: int = 12
    static_watts: float = 20.0

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ConfigurationError(f"n_cores must be positive, got {self.n_cores}")
        if self.static_watts < 0:
            raise ConfigurationError("static_watts must be non-negative")

    @property
    def peak_watts(self) -> float:
        """Server power with every core active at the fitted model's
        power at 2.7 GHz (informational upper bound)."""
        return self.static_watts + self.n_cores * self.core_model.active_power(2.7 * GHZ)

    def cpu_power(self, per_core_busy_fraction, per_core_frequency_hz) -> float:
        """Average CPU package power (W), excluding platform static power.

        Parameters are arrays of length ``n_cores``: the fraction of
        time each core was busy and the (average) frequency it ran at
        while busy.
        """
        busy = np.asarray(per_core_busy_fraction, dtype=float)
        freq = np.asarray(per_core_frequency_hz, dtype=float)
        if busy.shape != (self.n_cores,) or freq.shape != (self.n_cores,):
            raise ConfigurationError(
                f"expected arrays of shape ({self.n_cores},), got {busy.shape} and {freq.shape}"
            )
        if np.any((busy < 0) | (busy > 1)):
            raise ConfigurationError("busy fractions must lie in [0, 1]")
        active = self.core_model.active_power_array(freq)
        return float(np.sum(busy * active + (1.0 - busy) * self.core_model.idle_watts))

    def total_power(self, per_core_busy_fraction, per_core_frequency_hz) -> float:
        """Average whole-server power (W) including static power."""
        return self.static_watts + self.cpu_power(per_core_busy_fraction, per_core_frequency_hz)


@dataclass(frozen=True)
class SwitchPowerModel:
    """Utilization-independent switch power (the paper's default).

    Fig. 8 shows the HPE E3800 draws essentially constant power
    regardless of utilization, so the model is a constant ``active``
    draw and a (near-zero) ``sleep`` draw when consolidated off.
    """

    active_watts: float = 36.0
    sleep_watts: float = 0.0

    def __post_init__(self) -> None:
        if self.active_watts < 0 or self.sleep_watts < 0:
            raise ConfigurationError("switch power must be non-negative")
        if self.sleep_watts > self.active_watts:
            raise ConfigurationError("sleep power cannot exceed active power")

    def power(self, is_on: bool, utilization: float = 0.0) -> float:
        """Power (W) of one switch; ``utilization`` is accepted for API
        symmetry with :class:`HPESwitchPowerModel` but ignored."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(f"utilization {utilization} outside [0, 1]")
        return self.active_watts if is_on else self.sleep_watts


@dataclass(frozen=True)
class HPESwitchPowerModel:
    """The measured HPE E3800 J9574A model behind Fig. 8.

    Idle draw is 97.5 W; moving link utilization from 0 to 100 % adds at
    most ``delta_watts`` (0.59 W measured — 0.6 % of idle).  Activating
    ports in duplex vs simplex made no measurable difference, so the
    model exposes only total utilization.
    """

    idle_watts: float = 97.5
    delta_watts: float = 0.59
    sleep_watts: float = 0.0

    def __post_init__(self) -> None:
        if self.idle_watts < 0 or self.delta_watts < 0 or self.sleep_watts < 0:
            raise ConfigurationError("switch power must be non-negative")

    def power(self, is_on: bool, utilization: float = 0.0) -> float:
        """Power (W) at the given aggregate link ``utilization`` in [0, 1]."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(f"utilization {utilization} outside [0, 1]")
        if not is_on:
            return self.sleep_watts
        return self.idle_watts + self.delta_watts * utilization


@dataclass(frozen=True)
class LinkPowerModel:
    """Per-link (port pair) power.

    The LP objective (Eq. 2) has an explicit per-link power term
    ``l(u, v)``.  Port transceivers draw on the order of 1 W per end;
    the default charges 1 W per active link, 0 when down.
    """

    active_watts: float = 1.0
    sleep_watts: float = 0.0

    def __post_init__(self) -> None:
        if self.active_watts < 0 or self.sleep_watts < 0:
            raise ConfigurationError("link power must be non-negative")

    def power(self, is_on: bool) -> float:
        """Power (W) of one link."""
        return self.active_watts if is_on else self.sleep_watts


#: Module-level defaults matching the paper's constants.
DEFAULT_CORE_POWER = CorePowerModel()
DEFAULT_SERVER_POWER = ServerPowerModel()
DEFAULT_SWITCH_POWER = SwitchPowerModel()
DEFAULT_LINK_POWER = LinkPowerModel()
