"""Power models and energy accounting (paper Section V-A constants)."""

from .meter import EnergyMeter, PowerBreakdown
from .sleep import POWERNAP_SLEEP, SleepStateModel
from .models import (
    DEFAULT_CORE_POWER,
    DEFAULT_LINK_POWER,
    DEFAULT_SERVER_POWER,
    DEFAULT_SWITCH_POWER,
    CorePowerModel,
    HPESwitchPowerModel,
    LinkPowerModel,
    ServerPowerModel,
    SwitchPowerModel,
)

__all__ = [
    "CorePowerModel",
    "ServerPowerModel",
    "SwitchPowerModel",
    "HPESwitchPowerModel",
    "LinkPowerModel",
    "EnergyMeter",
    "PowerBreakdown",
    "SleepStateModel",
    "POWERNAP_SLEEP",
    "DEFAULT_CORE_POWER",
    "DEFAULT_SERVER_POWER",
    "DEFAULT_SWITCH_POWER",
    "DEFAULT_LINK_POWER",
]
