"""Energy accounting.

:class:`EnergyMeter` integrates a piecewise-constant power signal over
time — the way the paper computes average power from per-frequency
residency ("the average power consumption is calculated based on the
time and power consumption under each frequency setting").

:class:`PowerBreakdown` is the record experiments report: network
(switches + links) vs server (static + CPU) power, with convenience
arithmetic for comparing schemes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, SimulationError

__all__ = ["EnergyMeter", "PowerBreakdown"]


class EnergyMeter:
    """Integrates energy for a component whose power changes stepwise.

    Usage: call :meth:`set_power` whenever the component's draw changes
    (a DVFS transition, a switch turning off).  Energy between calls is
    ``power * dt``.  Time must be non-decreasing.
    """

    def __init__(self, initial_power_watts: float = 0.0, start_time: float = 0.0):
        if initial_power_watts < 0:
            raise ConfigurationError("power must be non-negative")
        self._power = float(initial_power_watts)
        self._time = float(start_time)
        self._start = float(start_time)
        self._energy = 0.0

    @property
    def current_power(self) -> float:
        """The power level (W) currently being integrated."""
        return self._power

    @property
    def energy_joules(self) -> float:
        """Energy accumulated up to the last ``set_power``/``advance``."""
        return self._energy

    def advance(self, time: float) -> None:
        """Integrate up to ``time`` at the current power level."""
        if time < self._time:
            raise SimulationError(
                f"EnergyMeter moved backwards: {time} < {self._time}"
            )
        self._energy += self._power * (time - self._time)
        self._time = time

    def set_power(self, power_watts: float, time: float) -> None:
        """Record a power change at ``time`` (integrating up to it first)."""
        if power_watts < 0:
            raise ConfigurationError("power must be non-negative")
        self.advance(time)
        self._power = float(power_watts)

    def reset(self, time: float) -> None:
        """Zero the accumulated energy and restart averaging at ``time``.

        Used to discard a warmup transient before measuring
        steady-state power.
        """
        self.advance(time)
        self._energy = 0.0
        self._start = self._time

    def average_power(self, end_time: float | None = None) -> float:
        """Average power (W) from the (re)start time to ``end_time``.

        With ``end_time=None``, averages up to the last advance.
        """
        if end_time is not None:
            self.advance(end_time)
        elapsed = self._time - self._start
        if elapsed <= 0:
            return self._power
        return self._energy / elapsed


@dataclass(frozen=True)
class PowerBreakdown:
    """Average power split into the components the paper plots.

    All values in Watts.  ``total`` is derived, not stored, so the
    breakdown can never be internally inconsistent.
    """

    switch_watts: float
    link_watts: float
    server_static_watts: float
    server_cpu_watts: float

    def __post_init__(self) -> None:
        for name in ("switch_watts", "link_watts", "server_static_watts", "server_cpu_watts"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    @property
    def network_watts(self) -> float:
        """DCN power: switches plus links."""
        return self.switch_watts + self.link_watts

    @property
    def server_watts(self) -> float:
        """Server power: platform static plus CPU."""
        return self.server_static_watts + self.server_cpu_watts

    @property
    def total_watts(self) -> float:
        """Entire data center power."""
        return self.network_watts + self.server_watts

    def saving_vs(self, baseline: "PowerBreakdown") -> float:
        """Fractional total-power saving relative to ``baseline``.

        Positive means this breakdown consumes less.  This is the
        metric behind the paper's headline "31.25 % of the total power
        budget".
        """
        if baseline.total_watts <= 0:
            raise ConfigurationError("baseline total power must be positive")
        return 1.0 - self.total_watts / baseline.total_watts

    def network_saving_vs(self, baseline: "PowerBreakdown") -> float:
        """Fractional DCN-only power saving relative to ``baseline``."""
        if baseline.network_watts <= 0:
            raise ConfigurationError("baseline network power must be positive")
        return 1.0 - self.network_watts / baseline.network_watts

    def server_saving_vs(self, baseline: "PowerBreakdown") -> float:
        """Fractional server-only power saving relative to ``baseline``."""
        if baseline.server_watts <= 0:
            raise ConfigurationError("baseline server power must be positive")
        return 1.0 - self.server_watts / baseline.server_watts

    def __add__(self, other: "PowerBreakdown") -> "PowerBreakdown":
        return PowerBreakdown(
            switch_watts=self.switch_watts + other.switch_watts,
            link_watts=self.link_watts + other.link_watts,
            server_static_watts=self.server_static_watts + other.server_static_watts,
            server_cpu_watts=self.server_cpu_watts + other.server_cpu_watts,
        )

    def scaled(self, factor: float) -> "PowerBreakdown":
        """Multiply every component by ``factor`` (e.g. time-weighting)."""
        if factor < 0:
            raise ConfigurationError("scale factor must be non-negative")
        return PowerBreakdown(
            switch_watts=self.switch_watts * factor,
            link_watts=self.link_watts * factor,
            server_static_watts=self.server_static_watts * factor,
            server_cpu_watts=self.server_cpu_watts * factor,
        )
