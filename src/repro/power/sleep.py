"""Core sleep-state model (PowerNap/DynSleep-family baselines).

The paper's related work splits server energy proportionality into two
families: *performance scaling* (DVFS — Rubik, EPRONS-Server) and
*sleeping* (PowerNap [9], DynSleep [11], SleepScale [12]), which race
requests at full speed and drop the core into a deep sleep state during
the resulting idle periods.  This model captures the sleep side:

* ``entry_latency_s`` — time after going idle before the deep state is
  reached (idle power is drawn during entry);
* ``sleep_watts`` — deep-state draw (PowerNap targets near zero);
* ``wake_latency_s`` — time to resume service after an arrival hits a
  sleeping core (added to that request's response time — the latency
  cost that makes sleeping risky for tail SLAs).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["SleepStateModel", "POWERNAP_SLEEP"]


@dataclass(frozen=True)
class SleepStateModel:
    """Deep-sleep parameters for one core."""

    sleep_watts: float = 0.1
    entry_latency_s: float = 1e-3
    wake_latency_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.sleep_watts < 0:
            raise ConfigurationError("sleep power must be non-negative")
        if self.entry_latency_s < 0 or self.wake_latency_s < 0:
            raise ConfigurationError("sleep latencies must be non-negative")


#: PowerNap-style deep sleep: ~0.1 W residual draw, 1 ms transitions
#: (the paper's [9] reports millisecond-scale full-system nap states).
POWERNAP_SLEEP = SleepStateModel()
