"""SLA guardrail: admission checks, a violation watchdog, hysteresis.

Under perfect telemetry the controller can trust the 90th-percentile
predictor and commit every solution unconditionally.  Under the
telemetry a real SDN controller gets — lost stats replies, stale
counters — an over-aggressive subnet shrink directly violates the
latency SLA the whole design protects.  The :class:`SlaGuardrail`
closes that loop in two places:

* **before commit** (admission): replay the *observed* demand — what
  the monitor actually measured, not what the predictor extrapolated —
  through the candidate routing's link headroom; a candidate that
  cannot carry the measured load is rejected and the last-known-good
  configuration stays in force;
* **after commit** (watchdog): fold the measured query tail latency
  (from the servers' :class:`~repro.control.latency_monitor.LatencyMonitor`)
  each epoch; a violation rolls the fabric back to the last-known-good
  routing, and a violation that persists *at* the last-known-good
  escalates the scale factor K through the
  :class:`~repro.control.kcontrol.ScaleFactorController`.

State machine (one transition per watchdog measurement)::

                 tail <= clear_band            tail > budget
        +------+ ------------------> +-------+ ------------> rollback,
        | HOLD | <------------------ | ARMED |               cooldown=N
        +------+   cooldown epochs   +-------+ <----+
           |        elapsed                         |
           |  tail > budget (even last-good bad)    |  tail back under
           +--> escalate K via kcontrol  -----------+  the clear band

    ARMED:  the current configuration has proven itself (a clear
            measurement); it becomes the rollback target.
    HOLD:   recently rolled back / escalated; the admission gate also
            refuses any commit that *shrinks* the subnet until the
            cooldown expires, so lossy telemetry cannot make the
            subnet oscillate (churn is itself charged transition
            energy).

The hysteresis band (``clear_fraction`` < ``violation_fraction``)
keeps a tail that hovers near the budget from flapping between
rollback and re-shrink every epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .kcontrol import ScaleFactorController

__all__ = [
    "SlaGuardrail",
    "GuardrailDecision",
    "GUARD_NONE",
    "GUARD_COMMITTED",
    "GUARD_REJECTED",
    "GUARD_HELD",
    "GUARD_ROLLBACK",
    "GUARD_ESCALATE",
    "GUARD_VIOLATION",
]

#: Admission-stage outcomes (recorded on :class:`~repro.control.controller.EpochOutcome`).
GUARD_NONE = "none"            # guardrail absent or nothing to compare against
GUARD_COMMITTED = "committed"  # candidate passed the admission replay
GUARD_REJECTED = "rejected"    # candidate failed the observed-demand replay
GUARD_HELD = "held"            # cooldown in force; shrinking commit refused

#: Watchdog outcomes (returned by ``SdnController.observe_sla``).
GUARD_ROLLBACK = "rollback"    # restored the last-known-good configuration
GUARD_ESCALATE = "escalate"    # raised K (violation at last-known-good)
GUARD_VIOLATION = "violation"  # violated with no remaining remedy


@dataclass(frozen=True)
class GuardrailDecision:
    """What the watchdog did with one measurement."""

    epoch: int
    measured_tail_s: float
    violated: bool
    action: str  # GUARD_NONE | GUARD_ROLLBACK | GUARD_ESCALATE | GUARD_VIOLATION
    k_after: float


class SlaGuardrail:
    """Admission gate + violation watchdog for the SDN controller.

    Parameters
    ----------
    network_budget_s:
        The query network-latency budget the SLA protects (5 ms in the
        paper's running example).
    admission_max_utilization:
        A candidate routing is admitted only if replaying the observed
        demand leaves every directed link at or below this utilization
        (just under 1.0 by default: past the knee, queueing delay
        explodes).
    violation_fraction / clear_fraction:
        The hysteresis band, as fractions of the budget.  A measured
        tail above ``violation_fraction * budget`` is a violation; only
        a tail below ``clear_fraction * budget`` re-arms the guardrail
        (marks the configuration known-good / ends cooldown).
    cooldown_epochs:
        Epochs after a rollback or escalation during which commits that
        shrink the subnet are refused.
    kcontrol:
        Optional :class:`ScaleFactorController` used to escalate K when
        a violation persists at the last-known-good configuration.
        ``None`` disables escalation (rollback-only guardrail).
    """

    def __init__(
        self,
        network_budget_s: float,
        admission_max_utilization: float = 0.98,
        violation_fraction: float = 1.0,
        clear_fraction: float = 0.8,
        cooldown_epochs: int = 2,
        kcontrol: ScaleFactorController | None = None,
    ):
        if network_budget_s <= 0:
            raise ConfigurationError("network budget must be positive")
        if not 0.0 < admission_max_utilization <= 1.0:
            raise ConfigurationError(
                f"admission_max_utilization {admission_max_utilization} outside (0, 1]"
            )
        if not 0.0 < clear_fraction < violation_fraction:
            raise ConfigurationError(
                "need 0 < clear_fraction < violation_fraction for a hysteresis band, "
                f"got ({clear_fraction}, {violation_fraction})"
            )
        if cooldown_epochs < 0:
            raise ConfigurationError("cooldown must be non-negative")
        self.network_budget_s = network_budget_s
        self.admission_max_utilization = admission_max_utilization
        self.violation_fraction = violation_fraction
        self.clear_fraction = clear_fraction
        self.cooldown_epochs = cooldown_epochs
        self.kcontrol = kcontrol

        self.cooldown_left = 0
        #: (routing, subnet, result) proven good by a clear measurement.
        self.last_good = None
        self.admissions = 0
        self.rejections = 0
        self.holds = 0
        self.rollbacks = 0
        self.escalations = 0
        self.violation_epochs = 0
        self.decisions: list[GuardrailDecision] = []

    # -- admission gate ----------------------------------------------------------

    @property
    def in_cooldown(self) -> bool:
        return self.cooldown_left > 0

    def admit(
        self,
        replay_max_utilization: float,
        candidate_switches_on: int,
        current_switches_on: int | None,
    ) -> str:
        """Gate one candidate commit; returns the admission outcome.

        ``replay_max_utilization`` is the most loaded directed link
        when the *observed* demand is replayed on the candidate
        routing.  During cooldown any candidate that shrinks the subnet
        is refused regardless of the replay — the fabric only grows (or
        holds) until the hysteresis clears.
        """
        if (
            self.in_cooldown
            and current_switches_on is not None
            and candidate_switches_on < current_switches_on
        ):
            self.holds += 1
            return GUARD_HELD
        if replay_max_utilization > self.admission_max_utilization:
            self.rejections += 1
            return GUARD_REJECTED
        self.admissions += 1
        return GUARD_COMMITTED

    # -- watchdog ----------------------------------------------------------------

    def is_violation(self, measured_tail_s: float) -> bool:
        return measured_tail_s > self.violation_fraction * self.network_budget_s

    def is_clear(self, measured_tail_s: float) -> bool:
        return measured_tail_s <= self.clear_fraction * self.network_budget_s

    def escalate_k(self) -> float | None:
        """One K step up through kcontrol; ``None`` when impossible.

        Bypasses the kcontrol dead band deliberately: the watchdog has
        *observed* a violation, which outranks the tail-tracking
        heuristic.  The step lands in kcontrol's decision log (reason
        ``"escalated"``), so the audit trail distinguishes watchdog
        moves from tracking moves.
        """
        kc = self.kcontrol
        if kc is None:
            return None
        new_k = kc.escalate()
        if new_k is None:
            return None
        self.escalations += 1
        return new_k

    def start_cooldown(self) -> None:
        self.cooldown_left = self.cooldown_epochs

    def tick_cooldown(self, clear: bool) -> None:
        """Advance the cooldown by one clear measurement."""
        if clear and self.cooldown_left > 0:
            self.cooldown_left -= 1

    def summary(self) -> dict:
        """Picklable counters for sweep payloads."""
        return {
            "admissions": self.admissions,
            "rejections": self.rejections,
            "holds": self.holds,
            "rollbacks": self.rollbacks,
            "escalations": self.escalations,
            "violation_epochs": self.violation_epochs,
            "k_final": self.kcontrol.k if self.kcontrol is not None else None,
        }
