"""Forwarding-rule and device-state reconfiguration plans.

Step (iii) of the Section-II consolidation procedure: after the
optimizer picks new paths and a new active subnet, the Path & Power
controller must install/remove OpenFlow rules and issue switch/link
power commands.  These dataclasses are the *plan* — the diff between
the current network state and the optimizer's output — so tests and
experiments can assert exactly what would be reconfigured (and how much
churn an epoch causes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netsim.network import Routing
from ..topology.graph import ActiveSubnet

__all__ = ["RuleUpdate", "DeviceCommands", "ReconfigurationPlan", "diff_routings", "diff_subnets"]


@dataclass(frozen=True)
class RuleUpdate:
    """Forwarding-rule churn for one epoch."""

    added: dict[str, tuple[str, ...]] = field(default_factory=dict)
    removed: dict[str, tuple[str, ...]] = field(default_factory=dict)
    rerouted: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = field(default_factory=dict)

    @property
    def n_changes(self) -> int:
        return len(self.added) + len(self.removed) + len(self.rerouted)

    @property
    def is_empty(self) -> bool:
        return self.n_changes == 0


@dataclass(frozen=True)
class DeviceCommands:
    """Switch/link power commands for one epoch."""

    switches_to_on: frozenset[str] = frozenset()
    switches_to_off: frozenset[str] = frozenset()
    links_to_on: frozenset[tuple[str, str]] = frozenset()
    links_to_off: frozenset[tuple[str, str]] = frozenset()

    @property
    def n_commands(self) -> int:
        return (
            len(self.switches_to_on)
            + len(self.switches_to_off)
            + len(self.links_to_on)
            + len(self.links_to_off)
        )

    @property
    def is_empty(self) -> bool:
        return self.n_commands == 0


@dataclass(frozen=True)
class ReconfigurationPlan:
    """One epoch's full reconfiguration: rules plus device commands."""

    rules: RuleUpdate
    devices: DeviceCommands

    @property
    def is_empty(self) -> bool:
        return self.rules.is_empty and self.devices.is_empty


def diff_routings(
    old: Routing | None,
    new: Routing,
    unchanged: frozenset[str] = frozenset(),
) -> RuleUpdate:
    """Compute the forwarding-rule diff between two routings.

    ``unchanged`` is an optional set of flow ids the caller *proves*
    kept their path — in delta-consolidation epochs the engine already
    classified them (:attr:`~repro.consolidation.delta.DeltaStats.unchanged_ids`)
    and their warm placements were never touched, so the diff skips the
    per-hop path comparison for them entirely.  With mostly-stable
    traffic that turns the epoch diff from O(flows x hops) into
    O(churn x hops) plus a set lookup per flow.
    """
    if old is None:
        return RuleUpdate(added={fid: path for fid, path in new.items()})
    old_paths = dict(old.items())
    new_paths = dict(new.items())
    added = {
        fid: p
        for fid, p in new_paths.items()
        if fid not in unchanged and fid not in old_paths
    }
    removed = {
        fid: p
        for fid, p in old_paths.items()
        if fid not in unchanged and fid not in new_paths
    }
    rerouted = {
        fid: (old_paths[fid], p)
        for fid, p in new_paths.items()
        if fid not in unchanged and fid in old_paths and old_paths[fid] != p
    }
    return RuleUpdate(added=added, removed=removed, rerouted=rerouted)


def diff_subnets(old: ActiveSubnet | None, new: ActiveSubnet) -> DeviceCommands:
    """Compute the device power-command diff between two subnets."""
    if old is None:
        return DeviceCommands(
            switches_to_on=frozenset(new.switches_on),
            links_to_on=frozenset(new.links_on),
        )
    return DeviceCommands(
        switches_to_on=frozenset(new.switches_on - old.switches_on),
        switches_to_off=frozenset(old.switches_on - new.switches_on),
        links_to_on=frozenset(new.links_on - old.links_on),
        links_to_off=frozenset(old.links_on - new.links_on),
    )
