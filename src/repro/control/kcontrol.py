"""Closed-loop scale-factor control (Section II's "dynamically adjusts
the scale factor K").

The paper's consolidation does not use a fixed K: the controller
measures the query network latency each epoch and moves K to keep the
tail near — but inside — the network budget:

* tail above the budget → raise K (reserve more headroom, spreading
  queries off hot links, activating switches if needed);
* tail comfortably below the budget → lower K (let the subnet shrink).

A dead band between the two thresholds prevents oscillation, and K is
confined to ``[1, k_max]`` (Eq. 3's box constraint).
"""

from __future__ import annotations

from ..errors import ConfigurationError

__all__ = ["ScaleFactorController"]


class ScaleFactorController:
    """Hysteresis controller for the consolidation scale factor."""

    def __init__(
        self,
        network_budget_s: float,
        k_initial: float = 1.0,
        k_max: float = 4.0,
        upper_fraction: float = 0.9,
        lower_fraction: float = 0.5,
        step: float = 1.0,
    ):
        if network_budget_s <= 0:
            raise ConfigurationError("network budget must be positive")
        if not 1.0 <= k_initial <= k_max:
            raise ConfigurationError(f"need 1 <= k_initial <= k_max, got {k_initial}, {k_max}")
        if not 0.0 < lower_fraction < upper_fraction <= 1.0:
            raise ConfigurationError(
                f"need 0 < lower < upper <= 1, got ({lower_fraction}, {upper_fraction})"
            )
        if step <= 0:
            raise ConfigurationError("step must be positive")
        self.network_budget_s = network_budget_s
        self.k = float(k_initial)
        self.k_max = float(k_max)
        self.upper_fraction = upper_fraction
        self.lower_fraction = lower_fraction
        self.step = step
        self.adjustments = 0

    def update(self, measured_tail_s: float) -> float:
        """Fold one epoch's measured query tail latency; returns the K
        to use for the next epoch."""
        if measured_tail_s < 0:
            raise ConfigurationError("measured tail must be non-negative")
        if measured_tail_s > self.upper_fraction * self.network_budget_s:
            new_k = min(self.k + self.step, self.k_max)
        elif measured_tail_s < self.lower_fraction * self.network_budget_s:
            new_k = max(self.k - self.step, 1.0)
        else:
            new_k = self.k
        if new_k != self.k:
            self.adjustments += 1
            self.k = new_k
        return self.k
