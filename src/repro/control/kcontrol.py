"""Closed-loop scale-factor control (Section II's "dynamically adjusts
the scale factor K").

The paper's consolidation does not use a fixed K: the controller
measures the query network latency each epoch and moves K to keep the
tail near — but inside — the network budget:

* tail above the budget → raise K (reserve more headroom, spreading
  queries off hot links, activating switches if needed);
* tail comfortably below the budget → lower K (let the subnet shrink).

A dead band between the two thresholds prevents oscillation, and K is
confined to ``[1, k_max]`` (Eq. 3's box constraint).

Every state change is recorded as a :class:`KControlDecision` — the
adaptive layer, the guardrail's escalation hook and the plain tracking
loop all move the same K, and without a shared audit trail their
interactions are undebuggable.  The log is surfaced through
``SdnController.telemetry_counters()["kcontrol"]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = [
    "KControlDecision",
    "ScaleFactorController",
    "K_RAISE",
    "K_LOWER",
    "K_DEADBAND",
    "K_CLAMPED",
    "K_HELD_MISSING",
    "K_ESCALATED",
    "K_SYNC",
]

#: Decision reasons (one per :class:`KControlDecision`).
K_RAISE = "raise"              # tail above the upper threshold, K stepped up
K_LOWER = "lower"              # tail below the lower threshold, K stepped down
K_DEADBAND = "deadband"        # tail inside the hysteresis band, K held
K_CLAMPED = "clamped"          # wanted to move but already at a box bound
K_HELD_MISSING = "held_missing"  # no usable measurement; last K held
K_ESCALATED = "escalated"      # guardrail watchdog forced a step up
K_SYNC = "sync"                # external (adaptive) layer adopted a new K


@dataclass(frozen=True)
class KControlDecision:
    """One audited K-control state transition.

    ``measured_tail_s`` is ``None`` for decisions that did not come from
    a tail measurement (:data:`K_HELD_MISSING`, :data:`K_ESCALATED`,
    :data:`K_SYNC`).
    """

    epoch: int
    measured_tail_s: float | None
    k_before: float
    k_after: float
    reason: str


class ScaleFactorController:
    """Hysteresis controller for the consolidation scale factor."""

    def __init__(
        self,
        network_budget_s: float,
        k_initial: float = 1.0,
        k_max: float = 4.0,
        upper_fraction: float = 0.9,
        lower_fraction: float = 0.5,
        step: float = 1.0,
    ):
        if network_budget_s <= 0:
            raise ConfigurationError("network budget must be positive")
        if not 1.0 <= k_initial <= k_max:
            raise ConfigurationError(f"need 1 <= k_initial <= k_max, got {k_initial}, {k_max}")
        if not 0.0 < lower_fraction < upper_fraction <= 1.0:
            raise ConfigurationError(
                f"need 0 < lower < upper <= 1, got ({lower_fraction}, {upper_fraction})"
            )
        if step <= 0:
            raise ConfigurationError("step must be positive")
        self.network_budget_s = network_budget_s
        self.k = float(k_initial)
        self.k_max = float(k_max)
        self.upper_fraction = upper_fraction
        self.lower_fraction = lower_fraction
        self.step = step
        self.adjustments = 0
        self.holds = 0
        self.syncs = 0
        self.escalations = 0
        self.decisions: list[KControlDecision] = []
        self._epoch = 0

    # -- decision bookkeeping ----------------------------------------------------

    def _record(self, tail: float | None, k_before: float, reason: str) -> None:
        self.decisions.append(
            KControlDecision(
                epoch=self._epoch,
                measured_tail_s=tail,
                k_before=k_before,
                k_after=self.k,
                reason=reason,
            )
        )
        self._epoch += 1

    def counters(self) -> dict:
        """Picklable audit payload (telemetry_counters()["kcontrol"]).

        ``reasons`` tallies every decision by reason so adaptive-vs-
        guardrail interactions (who moved K, when, and why) are
        reconstructible from a sweep result without the full log.
        """
        reasons: dict[str, int] = {}
        for d in self.decisions:
            reasons[d.reason] = reasons.get(d.reason, 0) + 1
        return {
            "k": self.k,
            "adjustments": self.adjustments,
            "holds": self.holds,
            "syncs": self.syncs,
            "escalations": self.escalations,
            "decisions": len(self.decisions),
            "reasons": reasons,
        }

    # -- the control step --------------------------------------------------------

    def update(self, measured_tail_s: float) -> float:
        """Fold one epoch's measured query tail latency; returns the K
        to use for the next epoch.

        Accepts only a finite, non-negative tail.  Under fully-blinded
        telemetry epochs (every stats reply lost) the latency monitor
        can surface ``nan`` — feeding that into the comparison ladder
        would silently take the dead-band branch (``nan`` compares
        false everywhere) and masquerade as a deliberate hold.  Callers
        with a missing measurement must use :meth:`hold_last_k`.
        """
        if not isinstance(measured_tail_s, (int, float)):
            raise ConfigurationError(
                f"measured tail must be a number, got {type(measured_tail_s).__name__}"
            )
        if not math.isfinite(measured_tail_s):
            raise ConfigurationError(
                f"measured tail must be finite, got {measured_tail_s!r} "
                "(blinded-telemetry epochs must call hold_last_k())"
            )
        if measured_tail_s < 0:
            raise ConfigurationError("measured tail must be non-negative")
        k_before = self.k
        if measured_tail_s > self.upper_fraction * self.network_budget_s:
            new_k, reason = min(self.k + self.step, self.k_max), K_RAISE
        elif measured_tail_s < self.lower_fraction * self.network_budget_s:
            new_k, reason = max(self.k - self.step, 1.0), K_LOWER
        else:
            new_k, reason = self.k, K_DEADBAND
        if new_k != self.k:
            self.adjustments += 1
            self.k = new_k
        elif reason != K_DEADBAND:
            # Wanted to move but the box constraint already binds.
            reason = K_CLAMPED
        self._record(float(measured_tail_s), k_before, reason)
        return self.k

    def hold_last_k(self) -> float:
        """The missing-measurement path: keep the last K, audited.

        A blinded epoch carries no information, so the only defensible
        move is none — but it must still appear in the decision log,
        otherwise a run with lost telemetry looks identical to one
        where the loop simply never ran.
        """
        self.holds += 1
        self._record(None, self.k, K_HELD_MISSING)
        return self.k

    def escalate(self) -> float | None:
        """One forced step up (the guardrail watchdog's hook), bypassing
        the dead band; ``None`` when already at ``k_max``."""
        if self.k >= self.k_max:
            return None
        k_before = self.k
        self.k = min(self.k + self.step, self.k_max)
        self.adjustments += 1
        self.escalations += 1
        self._record(None, k_before, K_ESCALATED)
        return self.k

    def sync(self, k: float) -> float:
        """Adopt an externally-chosen K (the adaptive layer's move).

        Keeps the escalation base coherent: when the adaptive joint
        controller moves K, a later guardrail escalation must step up
        from the K actually in force, not from a stale tracking value.
        Counted separately from :attr:`adjustments` (those are this
        controller's own moves).
        """
        if not 1.0 <= k <= self.k_max:
            raise ConfigurationError(
                f"sync K must lie in [1, {self.k_max}], got {k}"
            )
        if k != self.k:
            k_before = self.k
            self.k = float(k)
            self.syncs += 1
            self._record(None, k_before, K_SYNC)
        return self.k
