"""The centralized SDN controller loop (Fig. 7's Optimizer + Path &
Power controller).

Epoch cycle (Section II / IV-C):

1. the :class:`~repro.control.monitor.TrafficMonitor` has been fed 2-s
   rate polls all epoch;
2. every optimization period (10 min in the paper) the controller
   predicts next-epoch demands, re-runs latency-aware consolidation at
   the configured scale factor, and
3. emits a :class:`~repro.control.rules.ReconfigurationPlan` — the
   OpenFlow rule churn plus switch/link power commands — and adopts the
   new state.

Switch power-on transitions are counted (the paper measures 72.52 s
power-on on an HPE switch and sidesteps it with backup paths; we expose
the transition count so experiments can quantify how much churn a
policy causes).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..consolidation.base import ConsolidationResult, Consolidator
from ..errors import ConfigurationError
from ..flows.traffic import TrafficSet
from ..netsim.network import Routing
from ..topology.graph import ActiveSubnet
from .monitor import TrafficMonitor
from .rules import ReconfigurationPlan, diff_routings, diff_subnets

__all__ = ["EpochOutcome", "SdnController"]

#: Measured HPE E3800 power-on latency (Section IV-B).
SWITCH_POWER_ON_S = 72.52


@dataclass(frozen=True)
class EpochOutcome:
    """What one optimization epoch decided."""

    epoch: int
    result: ConsolidationResult
    plan: ReconfigurationPlan
    predicted_total_demand_bps: float


class SdnController:
    """Periodic re-optimization driver over a consolidator.

    Parameters
    ----------
    consolidator:
        The optimizer (MILP or greedy) used each epoch.
    scale_factor:
        The latency-aware scale factor ``K`` applied to
        latency-sensitive reservations; adjustable between epochs via
        :meth:`set_scale_factor` (the joint optimizer tunes it).
    optimization_period_s:
        Seconds between optimizer runs (600 in the paper).
    """

    def __init__(
        self,
        consolidator: Consolidator,
        scale_factor: float = 1.0,
        optimization_period_s: float = 600.0,
        best_effort_scale: bool = True,
        milp_fallback_time_limit_s: float | None = None,
    ):
        if scale_factor < 1.0:
            raise ConfigurationError(f"scale factor must be >= 1, got {scale_factor}")
        if optimization_period_s <= 0:
            raise ConfigurationError("optimization period must be positive")
        self.consolidator = consolidator
        self.scale_factor = scale_factor
        self.optimization_period_s = optimization_period_s
        self.best_effort_scale = best_effort_scale
        #: With a time limit set, an epoch the heuristic cannot pack is
        #: retried with the exact MILP at K=1 before being rejected —
        #: the "run the LP when the greedy strands a flow" deployment
        #: pattern.  Off by default (MILP solves can take seconds).
        self.milp_fallback_time_limit_s = milp_fallback_time_limit_s
        self.milp_fallback_count = 0
        self.monitor = TrafficMonitor()
        self._epoch = 0
        self._routing: Routing | None = None
        self._subnet: ActiveSubnet | None = None
        self.switch_power_on_count = 0
        self.transition_energy_joules = 0.0

    # -- state ---------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def current_routing(self) -> Routing | None:
        return self._routing

    @property
    def current_subnet(self) -> ActiveSubnet | None:
        return self._subnet

    def set_scale_factor(self, k: float) -> None:
        """Adopt a new scale factor for subsequent epochs (the joint
        optimizer's knob, Fig. 6)."""
        if k < 1.0:
            raise ConfigurationError(f"scale factor must be >= 1, got {k}")
        self.scale_factor = k

    def transition_downtime_s(self) -> float:
        """Cumulative switch power-on latency incurred so far."""
        return self.switch_power_on_count * SWITCH_POWER_ON_S

    # -- the epoch step ---------------------------------------------------------------

    def run_epoch(self, offered_traffic: TrafficSet) -> EpochOutcome:
        """Execute one optimization epoch.

        ``offered_traffic`` carries each flow's configured demand; where
        the monitor has observations, the 90th-percentile prediction
        replaces it.  Raises
        :class:`~repro.errors.InfeasibleError` if the instance cannot be
        packed even at K=1 (with ``best_effort_scale``) or at the
        configured K (without).
        """
        predicted = self.monitor.predicted_traffic(offered_traffic)
        kwargs = {}
        from ..consolidation.heuristic import GreedyConsolidator

        if isinstance(self.consolidator, GreedyConsolidator):
            kwargs["best_effort_scale"] = self.best_effort_scale
        try:
            result = self.consolidator.consolidate(predicted, self.scale_factor, **kwargs)
        except Exception as err:
            from ..errors import InfeasibleError

            if (
                not isinstance(err, InfeasibleError)
                or self.milp_fallback_time_limit_s is None
            ):
                raise
            from ..consolidation.milp import MilpConsolidator

            fallback = MilpConsolidator(
                self.consolidator.topology,
                safety_margin_bps=self.consolidator.safety_margin_bps,
                switch_model=self.consolidator.switch_model,
                link_model=self.consolidator.link_model,
                time_limit_s=self.milp_fallback_time_limit_s,
            )
            result = fallback.consolidate(predicted, 1.0)
            self.milp_fallback_count += 1

        plan = ReconfigurationPlan(
            rules=diff_routings(self._routing, result.routing),
            devices=diff_subnets(self._subnet, result.subnet),
        )
        # First epoch turns everything listed "on" from an assumed
        # all-on boot state; only count transitions after that.
        if self._subnet is not None:
            n_on = len(plan.devices.switches_to_on)
            self.switch_power_on_count += n_on
            # Transition overhead (Section IV-B): a switch draws power
            # for the full 72.52 s boot before it can forward, and the
            # 'backup path' mitigation keeps the switches being retired
            # alive for the same interval.  Charge both sides.
            switch_watts = self.consolidator.switch_model.power(True)
            overlap = n_on + len(plan.devices.switches_to_off)
            self.transition_energy_joules += overlap * switch_watts * SWITCH_POWER_ON_S

        self._routing = result.routing
        self._subnet = result.subnet
        outcome = EpochOutcome(
            epoch=self._epoch,
            result=result,
            plan=plan,
            predicted_total_demand_bps=predicted.total_demand_bps(),
        )
        self._epoch += 1
        return outcome
