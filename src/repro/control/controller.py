"""The centralized SDN controller loop (Fig. 7's Optimizer + Path &
Power controller).

Epoch cycle (Section II / IV-C):

1. the :class:`~repro.control.monitor.TrafficMonitor` has been fed 2-s
   rate polls all epoch;
2. every optimization period (10 min in the paper) the controller
   predicts next-epoch demands, re-runs latency-aware consolidation at
   the configured scale factor, and
3. emits a :class:`~repro.control.rules.ReconfigurationPlan` — the
   OpenFlow rule churn plus switch/link power commands — and adopts the
   new state.

Switch power-on transitions are counted (the paper measures 72.52 s
power-on on an HPE switch and sidesteps it with backup paths; we expose
the transition count so experiments can quantify how much churn a
policy causes).

Mid-epoch device failures enter through :meth:`SdnController.handle_failures`,
which walks a graceful-degradation ladder:

1. **local repair** — prune the dead devices from the active subnet and
   re-route stranded flows over surviving powered-on switches (dark
   ports may be lit; no switch boots, so recovery is rule-install
   fast);
2. **re-consolidation** — a full solve on the surviving topology
   (standby switches may boot, paying the 72.52 s power-on);
3. **safe mode** — every healthy device on (the ElasticTree-style
   all-on fabric), routing at K=1.

Each rung is only tried when the one above is infeasible; every
notification is recorded in a :class:`~repro.faults.ResilienceLog`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..consolidation.base import ConsolidationResult, Consolidator
from ..consolidation.repair import local_repair, stranded_flows
from ..errors import ConfigurationError, InfeasibleError
from ..faults.metrics import (
    DETECTION_S,
    REPAIR_LOCAL,
    REPAIR_NONE,
    REPAIR_RECONSOLIDATE,
    REPAIR_SAFE_MODE,
    RULE_INSTALL_S,
    RepairOutcome,
    ResilienceLog,
)
from ..flows.traffic import TrafficSet
from ..netsim.network import NetworkModel, Routing
from ..topology.graph import ActiveSubnet, canonical_link
from .guardrail import (
    GUARD_ESCALATE,
    GUARD_HELD,
    GUARD_NONE,
    GUARD_REJECTED,
    GUARD_ROLLBACK,
    GUARD_VIOLATION,
    GuardrailDecision,
    SlaGuardrail,
)
from .monitor import TrafficMonitor
from .rules import DeviceCommands, ReconfigurationPlan, diff_routings, diff_subnets

__all__ = ["EpochOutcome", "SdnController"]

#: Measured HPE E3800 power-on latency (Section IV-B).
SWITCH_POWER_ON_S = 72.52


@dataclass(frozen=True)
class EpochOutcome:
    """What one optimization epoch decided.

    ``requested_scale_factor`` is the controller's configured K;
    :attr:`effective_scale_factor` is the K the adopted solution was
    actually packed at — lower when the heuristic degraded the scale to
    fit, and 1.0 when the exact-MILP fallback (``milp_fallback``)
    rescued an epoch the greedy could not pack.  K-sweep figures must
    attribute epochs by the effective value.
    """

    epoch: int
    result: ConsolidationResult
    plan: ReconfigurationPlan
    predicted_total_demand_bps: float
    requested_scale_factor: float = 0.0
    milp_fallback: bool = False
    #: What the SLA guardrail's admission gate did: ``"none"`` (no
    #: guardrail / first epoch), ``"committed"``, ``"rejected"`` (the
    #: observed-demand replay failed; the previous configuration was
    #: retained) or ``"held"`` (cooldown refused a shrinking commit).
    guardrail_action: str = GUARD_NONE
    #: Most-loaded directed link when the observed demand was replayed
    #: on the candidate routing (0.0 when no replay ran).
    admission_utilization: float = 0.0
    #: Per-epoch :class:`~repro.consolidation.delta.DeltaStats` when the
    #: controller runs in ``mode="delta"``; ``None`` in full mode.
    delta_stats: object | None = None

    @property
    def committed(self) -> bool:
        """False when the guardrail kept the previous configuration."""
        return self.guardrail_action not in (GUARD_REJECTED, GUARD_HELD)

    @property
    def effective_scale_factor(self) -> float:
        return self.result.scale_factor

    @property
    def scale_degraded(self) -> bool:
        return self.result.scale_factor != self.requested_scale_factor


class SdnController:
    """Periodic re-optimization driver over a consolidator.

    Parameters
    ----------
    consolidator:
        The optimizer (MILP or greedy) used each epoch.
    scale_factor:
        The latency-aware scale factor ``K`` applied to
        latency-sensitive reservations; adjustable between epochs via
        :meth:`set_scale_factor` (the joint optimizer tunes it).
    optimization_period_s:
        Seconds between optimizer runs (600 in the paper).
    mode:
        ``"full"`` (default) re-solves every epoch from scratch;
        ``"delta"`` wraps the consolidator in a
        :class:`~repro.consolidation.delta.DeltaConsolidator` so epoch
        cost scales with traffic churn instead of flow count.  Delta
        mode requires an indexed-engine greedy consolidator (or an
        already-built :class:`DeltaConsolidator`); the ``delta_*``
        knobs configure its fallback policy.
    """

    MODES = ("full", "delta")

    def __init__(
        self,
        consolidator: Consolidator,
        scale_factor: float = 1.0,
        optimization_period_s: float = 600.0,
        best_effort_scale: bool = True,
        milp_fallback_time_limit_s: float | None = None,
        guardrail: SlaGuardrail | None = None,
        monitor: TrafficMonitor | None = None,
        mode: str = "full",
        delta_drift_bound: float = 0.25,
        delta_max_churn_fraction: float = 0.5,
        delta_full_refresh_epochs: int | None = None,
    ):
        if scale_factor < 1.0:
            raise ConfigurationError(f"scale factor must be >= 1, got {scale_factor}")
        if optimization_period_s <= 0:
            raise ConfigurationError("optimization period must be positive")
        if mode not in self.MODES:
            raise ConfigurationError(f"unknown mode {mode!r}; known: {self.MODES}")
        self.mode = mode
        self._delta = None
        if mode == "delta":
            from ..consolidation.delta import DeltaConsolidator

            if isinstance(consolidator, DeltaConsolidator):
                self._delta = consolidator
                consolidator = consolidator.inner
            else:
                # DeltaConsolidator validates that this is an
                # indexed-engine GreedyConsolidator.
                self._delta = DeltaConsolidator(
                    consolidator,
                    drift_bound=delta_drift_bound,
                    max_churn_fraction=delta_max_churn_fraction,
                    full_refresh_epochs=delta_full_refresh_epochs,
                )
        self.consolidator = consolidator
        self.scale_factor = scale_factor
        self.optimization_period_s = optimization_period_s
        self.best_effort_scale = best_effort_scale
        #: With a time limit set, an epoch the heuristic cannot pack is
        #: retried with the exact MILP at K=1 before being rejected —
        #: the "run the LP when the greedy strands a flow" deployment
        #: pattern.  Off by default (MILP solves can take seconds).
        self.milp_fallback_time_limit_s = milp_fallback_time_limit_s
        self.milp_fallback_count = 0
        self.monitor = monitor if monitor is not None else TrafficMonitor()
        #: Optional SLA guardrail; ``None`` (the default) commits every
        #: solution unconditionally — the historical behaviour.
        self.guardrail = guardrail
        self._epoch = 0
        self._routing: Routing | None = None
        self._subnet: ActiveSubnet | None = None
        self._result: ConsolidationResult | None = None
        self.switch_power_on_count = 0
        self.transition_energy_joules = 0.0
        #: Devices currently known-failed; every solve routes around them.
        self.failed_switches: set[str] = set()
        self.failed_links: set[tuple[str, str]] = set()
        self.resilience = ResilienceLog()
        self.adaptive_applied = 0
        self.adaptive_deferred = 0

    # -- state ---------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def current_routing(self) -> Routing | None:
        return self._routing

    @property
    def current_subnet(self) -> ActiveSubnet | None:
        return self._subnet

    @property
    def delta(self):
        """The :class:`~repro.consolidation.delta.DeltaConsolidator`
        driving epochs in ``mode="delta"`` (``None`` in full mode)."""
        return self._delta

    def telemetry_counters(self) -> dict:
        """Monitor + controller + delta-engine counters, one payload.

        Extends the monitor's gap/eviction accounting with the
        controller's transition/fallback tallies and — in delta mode —
        the delta engine's epoch/fallback breakdown under ``"delta"``.
        """
        out = self.monitor.telemetry_counters()
        out["milp_fallbacks"] = self.milp_fallback_count
        out["switch_power_ons"] = self.switch_power_on_count
        if self._delta is not None:
            out["delta"] = self._delta.counters()
        if self.guardrail is not None:
            out["guardrail"] = self.guardrail.summary()
            if self.guardrail.kcontrol is not None:
                out["kcontrol"] = self.guardrail.kcontrol.counters()
        if self.adaptive_applied or self.adaptive_deferred:
            out["adaptive"] = {
                "applied": self.adaptive_applied,
                "deferred": self.adaptive_deferred,
            }
        return out

    def set_scale_factor(self, k: float) -> None:
        """Adopt a new scale factor for subsequent epochs (the joint
        optimizer's knob, Fig. 6)."""
        if k < 1.0:
            raise ConfigurationError(f"scale factor must be >= 1, got {k}")
        self.scale_factor = k

    def apply_operating_point(self, point) -> bool:
        """Adopt an adaptive layer's (K, staleness_inflation) proposal.

        ``point`` duck-types :class:`~repro.control.adaptive.OperatingPoint`
        (``k`` and ``staleness_inflation`` attributes; the governor knob
        is consumed server-side, outside this controller).  Returns
        whether the proposal was adopted.  The adaptive layer yields to
        the guardrail rather than fighting it: a proposal that *shrinks*
        K is deferred while the watchdog has just rolled back or
        escalated, or while its cooldown is still running — the
        watchdog raised headroom for a reason, and the admission gate
        would refuse the shrinking commit anyway.  A proposal moving
        the same direction (K at least the value in force) supersedes
        the watchdog's own adjustment, so exactly one K change lands
        per epoch either way.

        An adopted K is synced into the guardrail's kcontrol
        (:meth:`~repro.control.kcontrol.ScaleFactorController.sync`),
        keeping later escalations stepping from the K actually in
        force.  The guardrail's rollback target is never touched.
        """
        g = self.guardrail
        if g is not None and point.k < self.scale_factor:
            last = g.decisions[-1] if g.decisions else None
            watchdog_acted = (
                last is not None
                and last.epoch == self._epoch - 1
                and last.action in (GUARD_ROLLBACK, GUARD_ESCALATE)
            )
            if watchdog_acted or g.in_cooldown:
                self.adaptive_deferred += 1
                return False
        self.monitor.staleness_inflation = float(point.staleness_inflation)
        if point.k != self.scale_factor:
            if g is not None and g.kcontrol is not None:
                g.kcontrol.sync(point.k)
            self.set_scale_factor(point.k)
        self.adaptive_applied += 1
        return True

    def transition_downtime_s(self) -> float:
        """Cumulative switch power-on latency incurred so far."""
        return self.switch_power_on_count * SWITCH_POWER_ON_S

    # -- transition accounting --------------------------------------------------------

    def _charge_transitions(self, devices: DeviceCommands) -> float:
        """Count power-ons and charge boot-overlap energy (Section IV-B).

        A switch draws power for the full 72.52 s boot before it can
        forward, and the backup-path mitigation keeps the switches
        being retired alive over the same interval — but only while a
        power-on is actually in flight.  An epoch that merely turns
        switches *off* hands traffic to already-forwarding paths
        immediately and retires the rest at once: no boot, no overlap,
        no transition charge.
        """
        n_on = len(devices.switches_to_on)
        self.switch_power_on_count += n_on
        if n_on == 0:
            return 0.0
        switch_watts = self.consolidator.switch_model.power(True)
        overlap = n_on + len(devices.switches_to_off)
        joules = overlap * switch_watts * SWITCH_POWER_ON_S
        self.transition_energy_joules += joules
        return joules

    # -- the epoch step ---------------------------------------------------------------

    def _solve(self, predicted: TrafficSet) -> tuple[ConsolidationResult, bool]:
        """One consolidation solve honouring the failed-device set.

        Returns ``(result, used_milp_fallback)``.
        """
        kwargs = {}
        from ..consolidation.heuristic import GreedyConsolidator

        if isinstance(self.consolidator, GreedyConsolidator):
            kwargs["best_effort_scale"] = self.best_effort_scale
        if self.failed_switches or self.failed_links:
            kwargs["excluded_switches"] = frozenset(self.failed_switches)
            kwargs["excluded_links"] = frozenset(self.failed_links)
        solver = self._delta if self._delta is not None else self.consolidator
        try:
            return solver.consolidate(predicted, self.scale_factor, **kwargs), False
        except InfeasibleError:
            if self.milp_fallback_time_limit_s is None:
                raise
            from ..consolidation.milp import MilpConsolidator

            fallback = MilpConsolidator(
                self.consolidator.topology,
                safety_margin_bps=self.consolidator.safety_margin_bps,
                switch_model=self.consolidator.switch_model,
                link_model=self.consolidator.link_model,
                time_limit_s=self.milp_fallback_time_limit_s,
            )
            result = fallback.consolidate(
                predicted,
                1.0,
                excluded_switches=frozenset(self.failed_switches),
                excluded_links=frozenset(self.failed_links),
            )
            self.milp_fallback_count += 1
            if self._delta is not None:
                # The adopted routing came from the MILP, not the delta
                # engine's packing state — its warm start is stale.
                self._delta.invalidate("milp_fallback")
            return result, True

    def run_epoch(self, offered_traffic: TrafficSet) -> EpochOutcome:
        """Execute one optimization epoch.

        ``offered_traffic`` carries each flow's configured demand; where
        the monitor has observations, the 90th-percentile prediction
        replaces it.  Raises
        :class:`~repro.errors.InfeasibleError` if the instance cannot be
        packed even at K=1 (with ``best_effort_scale``) or at the
        configured K (without).
        """
        # Departed flows' predictors would otherwise accumulate without
        # bound under churn — their stats are stale the moment the flow
        # leaves, so drop them before predicting.
        self.monitor.prune(flow.flow_id for flow in offered_traffic)
        predicted = self.monitor.predicted_traffic(offered_traffic)
        result, used_fallback = self._solve(predicted)

        guard_action = GUARD_NONE
        admission_util = 0.0
        if (
            self.guardrail is not None
            and self._routing is not None
            and self._subnet is not None
        ):
            admission_util = self._replay_max_utilization(
                offered_traffic, result.routing
            )
            guard_action = self.guardrail.admit(
                admission_util,
                result.subnet.n_switches_on,
                self._subnet.n_switches_on,
            )
            if guard_action in (GUARD_REJECTED, GUARD_HELD):
                # The candidate cannot carry the measured load (or a
                # cooldown is in force): keep the current configuration
                # untouched — an empty plan, no transitions charged.
                if self._delta is not None:
                    # The warm state now mirrors a candidate that was
                    # never installed; warm-starting the next epoch
                    # from it would keep refining a rejected plan.
                    self._delta.invalidate("uncommitted_candidate")
                outcome = EpochOutcome(
                    epoch=self._epoch,
                    result=self._result,
                    plan=ReconfigurationPlan(
                        rules=diff_routings(self._routing, self._routing),
                        devices=diff_subnets(self._subnet, self._subnet),
                    ),
                    predicted_total_demand_bps=predicted.total_demand_bps(),
                    requested_scale_factor=self.scale_factor,
                    milp_fallback=used_fallback,
                    guardrail_action=guard_action,
                    admission_utilization=admission_util,
                    delta_stats=self._delta.last_stats if self._delta else None,
                )
                self._epoch += 1
                return outcome

        # Delta epochs classify most flows as untouched; their warm
        # placements are guaranteed path-stable, so the rule diff can
        # skip comparing them hop by hop.
        # (On an MILP rescue the delta solve raised before refreshing
        # last_stats — a stale classification must not be trusted.)
        delta_stats = self._delta.last_stats if self._delta else None
        unchanged = (
            delta_stats.unchanged_ids
            if delta_stats is not None
            and delta_stats.mode == "delta"
            and not used_fallback
            else frozenset()
        )
        plan = ReconfigurationPlan(
            rules=diff_routings(self._routing, result.routing, unchanged=unchanged),
            devices=diff_subnets(self._subnet, result.subnet),
        )
        # First epoch turns everything listed "on" from an assumed
        # all-on boot state; only count transitions after that.
        if self._subnet is not None:
            self._charge_transitions(plan.devices)

        self._routing = result.routing
        self._subnet = result.subnet
        self._result = result
        outcome = EpochOutcome(
            epoch=self._epoch,
            result=result,
            plan=plan,
            predicted_total_demand_bps=predicted.total_demand_bps(),
            requested_scale_factor=self.scale_factor,
            milp_fallback=used_fallback,
            guardrail_action=guard_action,
            admission_utilization=admission_util,
            delta_stats=self._delta.last_stats if self._delta else None,
        )
        self._epoch += 1
        return outcome

    # -- SLA guardrail ----------------------------------------------------------------

    def _replay_max_utilization(
        self, offered_traffic: TrafficSet, candidate: Routing
    ) -> float:
        """Replay the *observed* demand through a candidate routing.

        The admission check deliberately uses what the monitor measured
        (window means), not the prediction the candidate was solved
        from — a candidate packed against an under-prediction must
        still carry the load that was actually seen.
        """
        observed = self.monitor.observed_traffic(offered_traffic)
        # The replay model only distinguishes indexed vs reference; the
        # sharded solve engine replays through the indexed model.
        cons_engine = getattr(self.consolidator, "engine", "indexed")
        model = NetworkModel(
            self.consolidator.topology,
            observed,
            candidate,
            engine="reference" if cons_engine == "reference" else "indexed",
        )
        return model.max_utilization()

    def observe_sla(self, measured_tail_s: float) -> GuardrailDecision:
        """Fold one epoch's measured query tail into the violation watchdog.

        Call after :meth:`run_epoch` with the tail latency the servers'
        latency monitors measured under the committed configuration.
        On a violation the watchdog restores the last-known-good
        routing (booting back any switches the bad commit turned off —
        churn charged as transition energy); a violation *at* the
        last-known-good escalates K through the guardrail's kcontrol.
        Clear measurements below the hysteresis band re-arm the
        guardrail and mark the current configuration known-good.
        """
        if measured_tail_s < 0:
            raise ConfigurationError("measured tail must be non-negative")
        g = self.guardrail
        if g is None:
            raise ConfigurationError("observe_sla() requires a guardrail")
        epoch = max(self._epoch - 1, 0)
        violated = g.is_violation(measured_tail_s)
        clear = g.is_clear(measured_tail_s)
        action = GUARD_NONE
        if violated:
            g.violation_epochs += 1
            if g.last_good is not None and g.last_good[0] is not self._routing:
                self._restore_last_good()
                g.rollbacks += 1
                action = GUARD_ROLLBACK
            else:
                # Already at (or without) a known-good configuration:
                # rolling back cannot help, so buy headroom instead.
                new_k = g.escalate_k()
                if new_k is not None:
                    self.set_scale_factor(new_k)
                    action = GUARD_ESCALATE
                else:
                    action = GUARD_VIOLATION
            g.start_cooldown()
        else:
            g.tick_cooldown(clear)
            if clear and not g.in_cooldown and self._routing is not None:
                g.last_good = (self._routing, self._subnet, self._result)
            if not g.in_cooldown and g.kcontrol is not None:
                # Closed-loop K tracking (Section II) resumes once the
                # guardrail is re-armed; this is also how K relaxes
                # back down after an escalation.
                k = g.kcontrol.update(measured_tail_s)
                if k != self.scale_factor:
                    self.set_scale_factor(k)
        decision = GuardrailDecision(
            epoch=epoch,
            measured_tail_s=measured_tail_s,
            violated=violated,
            action=action,
            k_after=self.scale_factor,
        )
        g.decisions.append(decision)
        return decision

    def _restore_last_good(self) -> None:
        """Roll the fabric back to the last-known-good configuration.

        Re-activating retired devices is a normal reconfiguration:
        power-ons are counted and boot-overlap energy charged, so
        telemetry-driven oscillation shows up in the energy ledger
        rather than hiding as free state flips.
        """
        routing, subnet, result = self.guardrail.last_good
        devices = diff_subnets(self._subnet, subnet)
        self._charge_transitions(devices)
        self._routing = routing
        self._subnet = subnet
        self._result = result
        if self._delta is not None:
            # The installed configuration just jumped to a historical
            # snapshot the delta engine never packed.
            self._delta.invalidate("rollback")

    # -- failure handling ---------------------------------------------------------------

    def handle_recoveries(self, switches=(), links=()) -> None:
        """Mark devices repaired: they become available (but stay off
        until an optimization epoch powers them back on)."""
        self.failed_switches -= set(switches)
        self.failed_links -= {canonical_link(u, v) for u, v in links}

    def _backup_switches(self, subnet: ActiveSubnet, routing: Routing) -> int:
        """Switches on in ``subnet`` that carry no routed flow — spare
        capacity deliberately kept alive."""
        used = set()
        topo = subnet.topology
        for _, path in routing.items():
            for node in path:
                if topo.is_switch(node):
                    used.add(node)
        return len(subnet.switches_on - used)

    def handle_failures(
        self, offered_traffic: TrafficSet, switches=(), links=()
    ) -> RepairOutcome:
        """Absorb a mid-epoch failure notification.

        Prunes the dead devices from the active subnet, then walks the
        degradation ladder (local repair → re-consolidation → safe
        mode) until the stranded flows of ``offered_traffic`` are all
        re-routed.  Raises :class:`~repro.errors.InfeasibleError` only
        when even the all-on safe mode cannot carry the demand.
        """
        switches = frozenset(switches)
        links = frozenset(canonical_link(u, v) for u, v in links)
        self.failed_switches |= switches
        self.failed_links |= links
        if self.guardrail is not None:
            # A known-good configuration is only good on the topology
            # it was proven on; the rollback target may route through
            # the devices that just died.
            self.guardrail.last_good = None

        if self._subnet is None or self._routing is None:
            outcome = RepairOutcome(
                epoch=self._epoch,
                mode=REPAIR_NONE,
                failed_switches=switches,
                failed_links=links,
                n_stranded=0,
                n_rerouted=0,
                n_sla_flows_hit=0,
                recovery_s=0.0,
                rule_changes=0,
                switches_powered_on=0,
                backup_switches=0,
                transition_energy_j=0.0,
            )
            self.resilience.record(outcome)
            return outcome

        degraded = self._subnet.without(switches, links)
        stranded = stranded_flows(offered_traffic, self._routing, degraded)
        n_sla_hit = sum(
            1 for fid in stranded if offered_traffic[fid].is_latency_sensitive
        )

        if not stranded:
            # Dead devices carried nothing; adopt the pruned subnet.
            self._subnet = degraded
            outcome = RepairOutcome(
                epoch=self._epoch,
                mode=REPAIR_NONE,
                failed_switches=switches,
                failed_links=links,
                n_stranded=0,
                n_rerouted=0,
                n_sla_flows_hit=0,
                recovery_s=DETECTION_S,
                rule_changes=0,
                switches_powered_on=0,
                backup_switches=self._backup_switches(degraded, self._routing),
                transition_energy_j=0.0,
            )
            self.resilience.record(outcome)
            return outcome

        old_routing = self._routing
        mode, new_routing, new_subnet = self._repair_ladder(
            offered_traffic, degraded
        )

        rule_changes = diff_routings(old_routing, new_routing).n_changes
        # Transitions are charged against the *degraded* state: the
        # failed devices are dark already, so only genuinely retired
        # survivors count as boot-overlap backups.
        devices = diff_subnets(degraded, new_subnet)
        joules = self._charge_transitions(devices)
        n_booted = len(devices.switches_to_on)
        recovery_s = (
            DETECTION_S
            + rule_changes * RULE_INSTALL_S
            + (SWITCH_POWER_ON_S if n_booted else 0.0)
        )

        self._routing = new_routing
        self._subnet = new_subnet
        outcome = RepairOutcome(
            epoch=self._epoch,
            mode=mode,
            failed_switches=switches,
            failed_links=links,
            n_stranded=len(stranded),
            n_rerouted=len(stranded),
            n_sla_flows_hit=n_sla_hit,
            recovery_s=recovery_s,
            rule_changes=rule_changes,
            switches_powered_on=n_booted,
            backup_switches=self._backup_switches(new_subnet, new_routing),
            transition_energy_j=joules,
        )
        self.resilience.record(outcome)
        return outcome

    def _repair_ladder(
        self, offered_traffic: TrafficSet, degraded: ActiveSubnet
    ) -> tuple[str, Routing, ActiveSubnet]:
        """(mode, routing, subnet) from the first rung that succeeds."""
        try:
            repair = local_repair(
                degraded,
                offered_traffic,
                self._routing,
                scale_factor=1.0,
                safety_margin_bps=self.consolidator.safety_margin_bps,
                failed_links=frozenset(self.failed_links),
                warm_state=self._delta,
            )
            if self._delta is not None:
                # Repair rewrote routes outside the delta engine's
                # packing state (re-consolidation below refreshes the
                # warm state itself, so only this rung — and safe mode
                # — invalidates).
                self._delta.invalidate("fault_repair")
            return REPAIR_LOCAL, repair.routing, repair.subnet
        except InfeasibleError:
            pass

        predicted = self.monitor.predicted_traffic(offered_traffic)
        try:
            result, _ = self._solve(predicted)
            return REPAIR_RECONSOLIDATE, result.routing, result.subnet
        except InfeasibleError:
            pass

        # Safe mode: every healthy device on, bandwidth-only routing.
        from ..consolidation.heuristic import route_on_subnet

        safe_subnet = self.consolidator.topology.full_subnet().without(
            self.failed_switches, self.failed_links
        )
        result = route_on_subnet(
            safe_subnet,
            predicted,
            scale_factor=1.0,
            safety_margin_bps=self.consolidator.safety_margin_bps,
        )
        if self._delta is not None:
            self._delta.invalidate("safe_mode")
        return REPAIR_SAFE_MODE, result.routing, result.subnet
