"""SDN control plane: monitoring, optimization loop, reconfiguration."""

from .controller import SWITCH_POWER_ON_S, EpochOutcome, SdnController
from .kcontrol import ScaleFactorController
from .latency_monitor import LatencyMonitor
from .monitor import TrafficMonitor
from .rules import (
    DeviceCommands,
    ReconfigurationPlan,
    RuleUpdate,
    diff_routings,
    diff_subnets,
)

__all__ = [
    "TrafficMonitor",
    "LatencyMonitor",
    "SdnController",
    "EpochOutcome",
    "ScaleFactorController",
    "SWITCH_POWER_ON_S",
    "RuleUpdate",
    "DeviceCommands",
    "ReconfigurationPlan",
    "diff_routings",
    "diff_subnets",
]
