"""SDN control plane: monitoring, optimization loop, reconfiguration."""

from .adaptive import (
    ContextualBanditController,
    FixedPolicy,
    JointHysteresisController,
    OperatingPoint,
    default_operating_grid,
    oracle_costs,
    regret_series,
    replay_scenario,
)
from .controller import SWITCH_POWER_ON_S, EpochOutcome, SdnController
from .guardrail import (
    GUARD_COMMITTED,
    GUARD_ESCALATE,
    GUARD_HELD,
    GUARD_NONE,
    GUARD_REJECTED,
    GUARD_ROLLBACK,
    GUARD_VIOLATION,
    GuardrailDecision,
    SlaGuardrail,
)
from .kcontrol import ScaleFactorController
from .latency_monitor import LatencyMonitor
from .monitor import TrafficMonitor
from .rules import (
    DeviceCommands,
    ReconfigurationPlan,
    RuleUpdate,
    diff_routings,
    diff_subnets,
)

__all__ = [
    "TrafficMonitor",
    "LatencyMonitor",
    "SdnController",
    "EpochOutcome",
    "ScaleFactorController",
    "SlaGuardrail",
    "GuardrailDecision",
    "GUARD_NONE",
    "GUARD_COMMITTED",
    "GUARD_REJECTED",
    "GUARD_HELD",
    "GUARD_ROLLBACK",
    "GUARD_ESCALATE",
    "GUARD_VIOLATION",
    "SWITCH_POWER_ON_S",
    "RuleUpdate",
    "DeviceCommands",
    "ReconfigurationPlan",
    "diff_routings",
    "diff_subnets",
    "OperatingPoint",
    "default_operating_grid",
    "FixedPolicy",
    "JointHysteresisController",
    "ContextualBanditController",
    "oracle_costs",
    "regret_series",
    "replay_scenario",
]
