"""Traffic statistics monitoring (the controller's 2-second poll).

The POX controller of the paper "fetches flow statistics and link
utilization every 2 s with an openflow message" and predicts each
flow's next-epoch demand as the 90th percentile of the last epoch
(Section II).  :class:`TrafficMonitor` is that component: it ingests
per-flow rate observations and produces the *predicted* traffic set the
optimizer consolidates.

A real control plane does not see every poll.  The monitor therefore
carries gap-aware semantics: dropped stats replies are recorded as
*gaps* (missing-sample accounting, never implicit zero demand), a
configurable staleness discount inflates predictions for flows whose
window is riddled with gaps, and a flow whose entire window was lost
falls back to its last good epoch's prediction instead of silently
reverting to its admission-time estimate.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..flows.prediction import PercentilePredictor
from ..flows.traffic import TrafficSet

__all__ = ["TrafficMonitor"]


class TrafficMonitor:
    """Per-flow rate observation and demand prediction.

    Parameters
    ----------
    q:
        Prediction percentile (90 per the paper).
    window:
        Samples per epoch: with a 2-s poll and a 10-min optimization
        period, one epoch holds 300 samples.
    max_tracked_flows:
        Upper bound on simultaneously tracked predictors.  ``None``
        (the default) keeps the historical unbounded behaviour; with a
        bound, admitting a new flow at capacity evicts the least
        recently observed one (deterministic: observation order) and
        increments :attr:`evictions` so operators can see the monitor
        is shedding state.
    staleness_inflation:
        Headroom multiplier under missing telemetry: a flow predicted
        from a window with gap fraction ``g`` reserves
        ``predicted * (1 + staleness_inflation * g)``.  ``0.0`` (the
        default) reproduces the historical prediction bit-exactly.
    """

    POLL_PERIOD_S = 2.0

    def __init__(
        self,
        q: float = 90.0,
        window: int = 300,
        max_tracked_flows: int | None = None,
        staleness_inflation: float = 0.0,
    ):
        if max_tracked_flows is not None and max_tracked_flows <= 0:
            raise ConfigurationError(
                f"max_tracked_flows must be positive, got {max_tracked_flows}"
            )
        if staleness_inflation < 0:
            raise ConfigurationError(
                f"staleness_inflation must be non-negative, got {staleness_inflation}"
            )
        self.q = q
        self.window = window
        self.max_tracked_flows = max_tracked_flows
        self.staleness_inflation = staleness_inflation
        self._predictors: dict[str, PercentilePredictor] = {}
        #: Last successfully computed prediction per flow — the
        #: fallback when a whole window of polls is lost.
        self._last_good: dict[str, float] = {}
        self.evictions = 0
        self.fallbacks = 0

    # -- predictor bookkeeping ---------------------------------------------------

    def _predictor(self, flow_id: str) -> PercentilePredictor:
        """The flow's predictor, created (and capacity-enforced) on demand.

        Touching a predictor moves it to the back of the eviction
        order, so "oldest" always means least recently observed.
        """
        predictor = self._predictors.pop(flow_id, None)
        if predictor is None:
            if (
                self.max_tracked_flows is not None
                and len(self._predictors) >= self.max_tracked_flows
            ):
                oldest = next(iter(self._predictors))
                del self._predictors[oldest]
                self._last_good.pop(oldest, None)
                self.evictions += 1
            predictor = PercentilePredictor(q=self.q, window=self.window)
        self._predictors[flow_id] = predictor
        return predictor

    def observe(self, flow_id: str, rate_bps: float) -> None:
        """Record one polled rate sample for a flow."""
        self._predictor(flow_id).observe(rate_bps)

    def observe_gap(self, flow_id: str) -> None:
        """Record one poll for which the flow's stats reply was lost."""
        self._predictor(flow_id).record_gap()

    def observe_epoch(self, rates_by_flow: dict[str, list[float]]) -> None:
        """Record a whole epoch of samples at once."""
        for fid, rates in rates_by_flow.items():
            for r in rates:
                self.observe(fid, r)

    def n_tracked_flows(self) -> int:
        return len(self._predictors)

    def has_prediction(self, flow_id: str) -> bool:
        p = self._predictors.get(flow_id)
        return p is not None and p.n_samples > 0

    def gap_fraction(self, flow_id: str) -> float:
        """Fraction of the flow's window that was dropped polls."""
        p = self._predictors.get(flow_id)
        return p.gap_fraction if p is not None else 0.0

    def predicted_demand(self, flow_id: str) -> float:
        """Predicted next-epoch demand (bit/s) for one flow."""
        p = self._predictors.get(flow_id)
        if p is None or p.n_samples == 0:
            raise ConfigurationError(f"no observations for flow {flow_id!r}")
        return p.predict()

    # -- traffic views -----------------------------------------------------------

    def predicted_traffic(self, base: TrafficSet) -> TrafficSet:
        """The base traffic set with demands replaced by predictions.

        Three cases per flow:

        * **observed** — the percentile prediction, inflated by the
          staleness discount when the window has gaps;
        * **tracked but blind** (every poll in the window dropped) —
          the last good epoch's prediction, counted in
          :attr:`fallbacks`; a flow with no good epoch yet keeps its
          configured demand;
        * **never seen** — the configured demand (a new flow's first
          epoch uses its admission-time estimate, as a real controller
          must).
        """
        out = TrafficSet()
        for flow in base:
            predictor = self._predictors.get(flow.flow_id)
            if predictor is not None and predictor.n_samples > 0:
                predicted = max(predictor.predict(), 1.0)
                gap = predictor.gap_fraction
                if self.staleness_inflation > 0.0 and gap > 0.0:
                    predicted *= 1.0 + self.staleness_inflation * gap
                self._last_good[flow.flow_id] = predicted
                out.add(flow.with_demand(predicted))
            elif predictor is not None and flow.flow_id in self._last_good:
                self.fallbacks += 1
                out.add(flow.with_demand(self._last_good[flow.flow_id]))
            else:
                out.add(flow)
        return out

    def observed_traffic(self, base: TrafficSet) -> TrafficSet:
        """The base traffic set with demands replaced by *measured* load.

        Uses the mean of each flow's delivered window samples — no
        percentile, no inflation — falling back to the configured
        demand where nothing was measured.  This is the admission
        check's replay input: "would the candidate subnet carry what we
        actually saw?", deliberately independent of the predictor the
        candidate was solved from.
        """
        out = TrafficSet()
        for flow in base:
            predictor = self._predictors.get(flow.flow_id)
            if predictor is not None and predictor.n_samples > 0:
                out.add(flow.with_demand(max(predictor.window_mean(), 1.0)))
            else:
                out.add(flow)
        return out

    # -- lifecycle ---------------------------------------------------------------

    def forget(self, flow_id: str) -> None:
        """Drop a departed flow's history."""
        self._predictors.pop(flow_id, None)
        self._last_good.pop(flow_id, None)

    def prune(self, active_flow_ids) -> int:
        """Forget every tracked flow not in ``active_flow_ids``.

        Called by the controller each epoch with the offered traffic's
        flow ids; without it, churned-out flows leak predictors (and
        their sample windows) for the lifetime of the run.  Returns the
        number of predictors dropped.
        """
        active = set(active_flow_ids)
        departed = [fid for fid in self._predictors if fid not in active]
        for fid in departed:
            del self._predictors[fid]
            self._last_good.pop(fid, None)
        return len(departed)

    def telemetry_counters(self) -> dict:
        """Gap/eviction/fallback accounting (picklable sweep payload)."""
        return {
            "tracked_flows": len(self._predictors),
            "evictions": self.evictions,
            "fallbacks": self.fallbacks,
            "window_gaps": sum(p.n_gaps for p in self._predictors.values()),
            "total_gaps": sum(p.total_gaps for p in self._predictors.values()),
        }
