"""Traffic statistics monitoring (the controller's 2-second poll).

The POX controller of the paper "fetches flow statistics and link
utilization every 2 s with an openflow message" and predicts each
flow's next-epoch demand as the 90th percentile of the last epoch
(Section II).  :class:`TrafficMonitor` is that component: it ingests
per-flow rate observations and produces the *predicted* traffic set the
optimizer consolidates.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..flows.prediction import PercentilePredictor
from ..flows.traffic import TrafficSet

__all__ = ["TrafficMonitor"]


class TrafficMonitor:
    """Per-flow rate observation and demand prediction.

    Parameters
    ----------
    q:
        Prediction percentile (90 per the paper).
    window:
        Samples per epoch: with a 2-s poll and a 10-min optimization
        period, one epoch holds 300 samples.
    """

    POLL_PERIOD_S = 2.0

    def __init__(self, q: float = 90.0, window: int = 300):
        self.q = q
        self.window = window
        self._predictors: dict[str, PercentilePredictor] = {}

    def observe(self, flow_id: str, rate_bps: float) -> None:
        """Record one polled rate sample for a flow."""
        predictor = self._predictors.get(flow_id)
        if predictor is None:
            predictor = PercentilePredictor(q=self.q, window=self.window)
            self._predictors[flow_id] = predictor
        predictor.observe(rate_bps)

    def observe_epoch(self, rates_by_flow: dict[str, list[float]]) -> None:
        """Record a whole epoch of samples at once."""
        for fid, rates in rates_by_flow.items():
            for r in rates:
                self.observe(fid, r)

    def n_tracked_flows(self) -> int:
        return len(self._predictors)

    def has_prediction(self, flow_id: str) -> bool:
        p = self._predictors.get(flow_id)
        return p is not None and p.n_samples > 0

    def predicted_demand(self, flow_id: str) -> float:
        """Predicted next-epoch demand (bit/s) for one flow."""
        p = self._predictors.get(flow_id)
        if p is None or p.n_samples == 0:
            raise ConfigurationError(f"no observations for flow {flow_id!r}")
        return p.predict()

    def predicted_traffic(self, base: TrafficSet) -> TrafficSet:
        """The base traffic set with demands replaced by predictions.

        Flows never observed keep their configured demand (a new flow's
        first epoch uses its admission-time estimate, as a real
        controller must).
        """
        out = TrafficSet()
        for flow in base:
            if self.has_prediction(flow.flow_id):
                predicted = max(self.predicted_demand(flow.flow_id), 1.0)
                out.add(flow.with_demand(predicted))
            else:
                out.add(flow)
        return out

    def forget(self, flow_id: str) -> None:
        """Drop a departed flow's history."""
        self._predictors.pop(flow_id, None)

    def prune(self, active_flow_ids) -> int:
        """Forget every tracked flow not in ``active_flow_ids``.

        Called by the controller each epoch with the offered traffic's
        flow ids; without it, churned-out flows leak predictors (and
        their sample windows) for the lifetime of the run.  Returns the
        number of predictors dropped.
        """
        active = set(active_flow_ids)
        departed = [fid for fid in self._predictors if fid not in active]
        for fid in departed:
            del self._predictors[fid]
        return len(departed)
