"""Per-request network latency / slack monitoring (Fig. 7's "Latency
monitor" box on every server).

Each server measures the network latency its incoming requests
experienced and hands EPRONS-Server the *request slack* — network
budget minus measured request latency (Section IV-C: "To be more
conservative, we only use the request slack").

In this reproduction the monitor wraps the flow-level
:class:`~repro.netsim.network.NetworkModel`: it builds per-ISN latency
samplers for the simulator and a pooled mixture sampler used when one
representative server stands in for the statistically identical ISNs.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..flows.traffic import TrafficSet
from ..netsim.network import NetworkModel
from ..rng import ensure_rng

__all__ = ["LatencyMonitor"]


class LatencyMonitor:
    """Builds per-request network-latency samplers from a network model."""

    def __init__(self, network_model: NetworkModel, pool_size: int = 4096):
        if pool_size <= 0:
            raise ConfigurationError("pool size must be positive")
        self.network_model = network_model
        self.pool_size = pool_size

    def request_flow_ids(self) -> list[str]:
        """Latency-sensitive *request* flows (aggregator → ISN)."""
        ids = [
            f.flow_id
            for f in self.network_model.traffic.latency_sensitive
            if f.flow_id.startswith("req:")
        ]
        if ids:
            return ids
        # Fall back to all latency-sensitive flows for custom traffic.
        return [f.flow_id for f in self.network_model.traffic.latency_sensitive]

    def flow_sampler(self, flow_id: str):
        """A ``sampler(n, rng)`` for one flow's network latency."""

        def sample(n: int, rng) -> np.ndarray:
            return self.network_model.sample_flow_latency(flow_id, n, ensure_rng(rng))

        return sample

    def pooled_sampler(self, seed_or_rng=None):
        """A ``sampler(n, rng)`` drawing from the mixture over all
        request flows.

        Used when a single simulated server represents the ISN
        population: a request's network latency is that of a uniformly
        random ISN's request path.  A pre-drawn pool keeps the DES's
        per-chunk cost flat.
        """
        rng = ensure_rng(seed_or_rng)
        ids = self.request_flow_ids()
        if not ids:
            raise ConfigurationError("no latency-sensitive flows to sample")
        per_flow = max(1, self.pool_size // len(ids))
        pool = np.concatenate(
            [self.network_model.sample_flow_latency(fid, per_flow, rng) for fid in ids]
        )

        def sample(n: int, sample_rng) -> np.ndarray:
            r = ensure_rng(sample_rng)
            return pool[r.integers(0, len(pool), size=n)]

        return sample

    def reply_flow_ids(self) -> list[str]:
        """Latency-sensitive *reply* flows (ISN → aggregator)."""
        return [
            f.flow_id
            for f in self.network_model.traffic.latency_sensitive
            if f.flow_id.startswith("rep:")
        ]

    def pooled_reply_sampler(self, seed_or_rng=None):
        """A ``sampler(n, rng)`` over the reply-path latency mixture.

        Feed it to the runner's ``reply_latency_sampler`` to account for
        the reply leg in the end-to-end SLA (the governor still only
        sees request slack).  Raises when the traffic has no reply
        flows.
        """
        rng = ensure_rng(seed_or_rng)
        ids = self.reply_flow_ids()
        if not ids:
            raise ConfigurationError("traffic has no reply flows to sample")
        per_flow = max(1, self.pool_size // len(ids))
        pool = np.concatenate(
            [self.network_model.sample_flow_latency(fid, per_flow, rng) for fid in ids]
        )

        def sample(n: int, sample_rng) -> np.ndarray:
            r = ensure_rng(sample_rng)
            return pool[r.integers(0, len(pool), size=n)]

        return sample

    def mean_request_latency(self) -> float:
        """Average request-path latency over all request flows."""
        ids = self.request_flow_ids()
        return float(
            np.mean([self.network_model.flow_mean_latency(fid) for fid in ids])
        )

    def request_tail_latency(self, q: float = 95.0, n: int = 2000, seed_or_rng=None) -> float:
        """The q-th percentile of pooled request-path latency."""
        rng = ensure_rng(seed_or_rng)
        ids = self.request_flow_ids()
        samples = np.concatenate(
            [self.network_model.sample_flow_latency(fid, n, rng) for fid in ids]
        )
        return float(np.percentile(samples, q))

    @staticmethod
    def from_traffic(topology, traffic: TrafficSet, routing, link_model=None) -> "LatencyMonitor":
        """Convenience constructor from raw routing components."""
        return LatencyMonitor(NetworkModel(topology, traffic, routing, link_model))
