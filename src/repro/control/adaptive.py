"""Online joint operating-point control (ROADMAP item 5's closed loop).

The paper picks the scale factor K and the server governor by *offline*
sweep; Popcorns-Pro-style cooperative control moves that choice online.
This module closes the loop: each optimization epoch a policy selects
one :class:`OperatingPoint` — the joint (K, governor,
staleness_inflation) knob triple — from a finite grid, the
:class:`~repro.control.controller.SdnController` adopts it (deferring
to the SLA guardrail when the watchdog just acted), and the realised
(energy + SLA-penalty) cost of the epoch is fed back.

Three policies share the ``propose(context) / observe(cost)`` protocol:

* :class:`FixedPolicy` — one grid point forever (the sweep baselines,
  and the arms the regret oracle is recovered from);
* :class:`JointHysteresisController` — the principled extension of
  :class:`~repro.control.kcontrol.ScaleFactorController` to the joint
  space: grid points are ordered by conservativeness, a violation jumps
  to the most conservative point, a comfortably-clear tail relaxes one
  step down, a dead band plus cooldown prevents oscillation;
* :class:`ContextualBanditController` — ε-greedy/UCB over the grid,
  contextualised on coarse buckets of the observable telemetry
  (tail latency, degraded-telemetry and churn flags), reward the
  negative normalised cost; all randomness via :func:`repro.rng.ensure_rng`.

The per-epoch *server* side is priced by :class:`ServerSurrogate` — a
deterministic O(1) stand-in for the DES: a governor plans a DVFS
frequency for the load it last saw (one epoch of lag, headroom by
policy aggressiveness), and the epoch's power and tail follow from the
resulting busy fraction.  The lag is the adversarial mechanism: a flash
crowd's onset lands on a frequency planned for the lull, saturating
aggressive governors while conservative ones ride it out at higher
energy.  Absolute values are calibrated, not simulated; every policy is
priced by the same surrogate, so *differences* — the quantity regret
accounting consumes — are meaningful.

Regret is accounted against the per-regime oracle
(:func:`oracle_costs`): for each regime label of the scenario, the
fixed arm with the least summed cost over that regime's epochs; regret
of a policy is its cumulative cost minus the oracle's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..power.models import ServerPowerModel
from ..rng import ensure_rng
from ..server.dvfs import XEON_LADDER

__all__ = [
    "OperatingPoint",
    "GOVERNOR_HEADROOM",
    "default_operating_grid",
    "ServerSurrogate",
    "FixedPolicy",
    "JointHysteresisController",
    "ContextualBanditController",
    "oracle_costs",
    "regret_series",
    "replay_scenario",
]

#: Frequency-planning headroom by governor: the planned speed is
#: ``min(1, load * headroom)`` of f_max.  ``None`` means the governor
#: never scales down (the paper's no-PM baseline).  Larger headroom ⇒
#: more conservative (faster, hotter, harder to saturate).
GOVERNOR_HEADROOM = {
    "no-pm": None,
    "rubik": 1.4,
    "rubik+": 1.3,
    "timetrader": 1.2,
    "eprons-noreorder": 1.15,
    "eprons-server": 1.1,
    "oracle": 1.02,
}


@dataclass(frozen=True)
class OperatingPoint:
    """One joint knob setting: (K, server governor, staleness inflation)."""

    k: float
    governor: str
    staleness_inflation: float = 0.0

    def __post_init__(self) -> None:
        if self.k < 1.0:
            raise ConfigurationError(f"scale factor must be >= 1, got {self.k}")
        if self.governor not in GOVERNOR_HEADROOM:
            raise ConfigurationError(
                f"unknown governor {self.governor!r}; known: "
                f"{tuple(sorted(GOVERNOR_HEADROOM))}"
            )
        if self.staleness_inflation < 0:
            raise ConfigurationError("staleness inflation must be non-negative")

    @property
    def label(self) -> str:
        out = f"k{self.k:g}-{self.governor}"
        if self.staleness_inflation:
            out += f"-i{self.staleness_inflation:g}"
        return out

    def conservativeness(self) -> tuple:
        """Sort key: cheap/aggressive first, safe/expensive last.

        Governor-major, then K: server power dwarfs the per-K network
        delta on the quiet side of the grid, so this order is monotone
        in quiet-regime cost — which is what makes "jump to the lowest
        unscarred point" a sensible relaxation target.
        """
        h = GOVERNOR_HEADROOM[self.governor]
        return (math.inf if h is None else h, self.k, self.staleness_inflation)


def default_operating_grid(
    ks=(1.0, 2.0, 4.0),
    governors=("eprons-server", "no-pm"),
    inflations=(0.0,),
) -> tuple[OperatingPoint, ...]:
    """The cross-product grid, ordered by conservativeness ascending."""
    points = [
        OperatingPoint(k=float(k), governor=g, staleness_inflation=float(i))
        for k in ks
        for g in governors
        for i in inflations
    ]
    if not points:
        raise ConfigurationError("operating grid must be non-empty")
    return tuple(sorted(points, key=OperatingPoint.conservativeness))


# -- server-side pricing -----------------------------------------------------------


class ServerSurrogate:
    """Deterministic per-epoch server power/tail pricing.

    Each epoch the governor plans a ladder frequency for the load it
    observed *last* epoch (plus its headroom); the epoch then runs at
    the true load.  Busy fraction = load · f_max / f; past the
    saturation knee the queue grows for the whole epoch and the tail is
    dominated by backlog.  Below it, an M/M/1-style ``1/(1-ρ)``
    inflation of the base service tail.
    """

    SATURATION = 0.97

    def __init__(
        self,
        power_model: ServerPowerModel | None = None,
        ladder=XEON_LADDER,
        base_tail_s: float = 1.5e-3,
        saturated_tail_s: float = 0.25,
    ):
        if base_tail_s <= 0 or saturated_tail_s <= 0:
            raise ConfigurationError("surrogate tails must be positive")
        self.power_model = power_model if power_model is not None else ServerPowerModel()
        self.ladder = ladder
        self.base_tail_s = base_tail_s
        self.saturated_tail_s = saturated_tail_s
        self._planned_load: float | None = None

    def step(self, governor: str, load: float) -> tuple[float, float]:
        """Price one epoch; returns ``(watts_per_server, server_tail_s)``."""
        if not 0.0 < load <= 1.0:
            raise ConfigurationError(f"load {load} outside (0, 1]")
        headroom = GOVERNOR_HEADROOM[governor]
        planned = self._planned_load if self._planned_load is not None else load
        self._planned_load = load
        f_max = self.ladder.f_max
        if headroom is None:
            f = f_max
        else:
            f = self.ladder.clamp(min(1.0, planned * headroom) * f_max)
        busy_raw = load * f_max / f
        if busy_raw >= self.SATURATION:
            busy = self.SATURATION
            tail_s = self.saturated_tail_s * max(1.0, busy_raw)
        else:
            busy = busy_raw
            tail_s = self.base_tail_s * (f_max / f) / (1.0 - busy)
        n = self.power_model.n_cores
        watts = self.power_model.total_power([busy] * n, [f] * n)
        return watts, tail_s


# -- policies ----------------------------------------------------------------------


class FixedPolicy:
    """One operating point forever (the baseline arms).

    Non-adaptive: the replay engine sets the point once at construction
    and never calls back into the controller, so with the guardrail on
    this is exactly the "guardrail-only" configuration — the watchdog
    alone drives K.
    """

    adaptive = False

    def __init__(self, point: OperatingPoint):
        self.point = point
        self.name = f"fixed-{point.label}"
        self.total_cost_j = 0.0

    def propose(self, context: dict) -> OperatingPoint:
        return self.point

    def observe(self, cost_j: float, context: dict | None = None) -> None:
        self.total_cost_j += cost_j


class JointHysteresisController:
    """Hysteresis + cooldown + scar memory over the ordered grid.

    The scalar :class:`~repro.control.kcontrol.ScaleFactorController`
    lifted to the joint space: instead of stepping K by ±1 it steps an
    *index* along the conservativeness-ordered grid.  Three asymmetries,
    each earning its keep against adversarial traffic:

    * **violation ⇒ jump to the top** — an SLA miss costs more than any
      single epoch of spare energy, so recovery is immediate, not
      stepped (the guardrail's escalate-by-one would take several
      epochs to buy the same headroom);
    * **relaxation ⇒ jump to the floor** — after ``relax_after``
      consecutive comfortably-clear epochs the controller drops
      straight to the cheapest point not ruled out by a live scar.
      Stepping down one index at a time would buy nothing but dwell
      time at intermediate points (grid cost is not monotone in
      conservativeness); the scar floor is the safety net;
    * **violations scar what they disprove**: for ``scar_epochs`` the
      relaxation floor stays above the scarred points, so a relaxation
      cycle does not re-buy a penalty it already paid for.  A *network*
      violation at K=x disproves every point with K ≤ x (a smaller
      reservation cannot carry what this one could not); a *server*
      violation scars only the exact point (the governor saturated —
      its same-K sibling with a faster governor may still be fine).
      Scars expire: a point that was bad under a surge is often the
      right one once the surge has passed.
    """

    adaptive = True

    def __init__(
        self,
        points: tuple[OperatingPoint, ...] | None = None,
        latency_constraint_s: float = 30e-3,
        network_budget_s: float = 5e-3,
        upper_fraction: float = 0.85,
        lower_fraction: float = 0.6,
        cooldown_epochs: int = 1,
        relax_after: int = 2,
        scar_epochs: int = 8,
        start: str = "top",
    ):
        if not 0.0 < lower_fraction < upper_fraction <= 1.0:
            raise ConfigurationError(
                f"need 0 < lower < upper <= 1, got ({lower_fraction}, {upper_fraction})"
            )
        if cooldown_epochs < 0 or scar_epochs < 0:
            raise ConfigurationError("cooldown and scar epochs must be non-negative")
        if relax_after < 1:
            raise ConfigurationError("relax_after must be at least 1")
        if start not in ("top", "bottom"):
            raise ConfigurationError(f"start must be 'top' or 'bottom', got {start!r}")
        grid = points if points is not None else default_operating_grid()
        self.points = tuple(sorted(grid, key=OperatingPoint.conservativeness))
        self.latency_constraint_s = latency_constraint_s
        self.network_budget_s = network_budget_s
        self.upper_fraction = upper_fraction
        self.lower_fraction = lower_fraction
        self.cooldown_epochs = cooldown_epochs
        self.relax_after = relax_after
        self.scar_epochs = scar_epochs
        self._idx = len(self.points) - 1 if start == "top" else 0
        self._cooldown = 0
        self._streak = 0
        #: scarred index -> epoch counter the scar expires at.
        self._scars: dict[int, int] = {}
        self._clock = 0
        self.moves = 0
        self.escalations = 0
        self.name = "hysteresis"
        self.total_cost_j = 0.0

    @property
    def current(self) -> OperatingPoint:
        return self.points[self._idx]

    def _floor(self) -> int:
        """Lowest index not ruled out by a live scar (scars need not be
        contiguous: a network scar spans both governor branches)."""
        live = {i for i, until in self._scars.items() if until > self._clock}
        for i in range(len(self.points)):
            if i not in live:
                return i
        return len(self.points) - 1

    def propose(self, context: dict) -> OperatingPoint:
        self._clock += 1
        top = len(self.points) - 1
        tail = context.get("tail_s")
        net_tail = context.get("net_tail_s")
        # The point that actually ran last epoch: the controller may
        # have deferred our proposal, and scarring what *we wanted*
        # instead of what *was measured* would disprove the wrong
        # points (a violation while deferred at the bottom must not
        # scar the top of the grid).
        ran = context.get("point", self.points[self._idx])
        if context.get("violated"):
            until = self._clock + self.scar_epochs
            if net_tail is not None and net_tail > self.network_budget_s:
                for i, p in enumerate(self.points):
                    if p.k <= ran.k:
                        self._scars[i] = max(self._scars.get(i, 0), until)
            else:
                for i, p in enumerate(self.points):
                    if p.k == ran.k and p.governor == ran.governor:
                        self._scars[i] = max(self._scars.get(i, 0), until)
            if self._idx < top:
                self._idx = top
                self.moves += 1
                self.escalations += 1
            self._streak = 0
            self._cooldown = self.cooldown_epochs
        elif tail is not None:
            if tail < self.lower_fraction * self.latency_constraint_s:
                self._streak += 1
            else:
                self._streak = 0
            if self._cooldown > 0:
                self._cooldown -= 1
            elif tail > self.upper_fraction * self.latency_constraint_s:
                if self._idx < top:
                    self._idx += 1
                    self.moves += 1
                    self._streak = 0
                    self._cooldown = self.cooldown_epochs
            elif self._streak >= self.relax_after:
                floor = min(self._floor(), top)
                if self._idx > floor:
                    self._idx = floor
                    self.moves += 1
                    self._streak = 0
                    self._cooldown = self.cooldown_epochs
        return self.points[self._idx]

    def observe(self, cost_j: float, context: dict | None = None) -> None:
        self.total_cost_j += cost_j


class ContextualBanditController:
    """ε-greedy + UCB over the grid, contextualised on telemetry buckets.

    Context buckets are deliberately coarse — (tail band, degraded
    flag, churn flag) — so a 30-odd-epoch adversarial run revisits each
    context often enough for the value estimates to mean something.
    Costs are normalised online to [0, 1] (running min/max); untried
    arms are optimistic, ε decays as ``ε₀/√visits``, and every random
    draw comes from one :func:`~repro.rng.ensure_rng` stream, so a
    seeded replay is bit-identical anywhere.
    """

    adaptive = True

    def __init__(
        self,
        points: tuple[OperatingPoint, ...] | None = None,
        seed_or_rng=0,
        epsilon: float = 0.25,
        ucb_c: float = 0.5,
        latency_constraint_s: float = 30e-3,
    ):
        if not 0.0 <= epsilon <= 1.0:
            raise ConfigurationError(f"epsilon {epsilon} outside [0, 1]")
        if ucb_c < 0:
            raise ConfigurationError("ucb_c must be non-negative")
        grid = points if points is not None else default_operating_grid()
        self.points = tuple(sorted(grid, key=OperatingPoint.conservativeness))
        self.rng = ensure_rng(seed_or_rng)
        self.epsilon = epsilon
        self.ucb_c = ucb_c
        self.latency_constraint_s = latency_constraint_s
        #: context key -> per-arm [pull count, mean normalised cost].
        self._stats: dict[tuple, list[list[float]]] = {}
        self._last: tuple[tuple, int] | None = None
        self._cost_min: float | None = None
        self._cost_max: float | None = None
        self.explorations = 0
        self.name = "bandit"
        self.total_cost_j = 0.0

    def _bucket(self, context: dict) -> tuple:
        tail = context.get("tail_s")
        if tail is None:
            band = 0
        elif tail < 0.6 * self.latency_constraint_s:
            band = 1
        elif tail <= self.latency_constraint_s:
            band = 2
        else:
            band = 3
        degraded = 1 if context.get("degraded_fraction", 0.0) > 0.05 else 0
        churn = 1 if context.get("churn_fraction", 0.0) > 0.3 else 0
        return (band, degraded, churn)

    def propose(self, context: dict) -> OperatingPoint:
        key = self._bucket(context)
        arms = self._stats.setdefault(key, [[0, 0.0] for _ in self.points])
        total = sum(int(n) for n, _ in arms) + 1
        eps = self.epsilon / math.sqrt(total)
        if float(self.rng.random()) < eps:
            idx = int(self.rng.integers(0, len(self.points)))
            self.explorations += 1
        else:
            best_idx, best_score = 0, math.inf
            for i, (n, mean) in enumerate(arms):
                bonus = self.ucb_c * math.sqrt(math.log(total + 1.0) / (n + 1.0))
                # Untried arms score 0 - bonus: optimistic, tried in
                # conservativeness order (ties break toward cheap).
                score = (mean if n > 0 else 0.0) - bonus
                if score < best_score:
                    best_idx, best_score = i, score
            idx = best_idx
        self._last = (key, idx)
        return self.points[idx]

    def observe(self, cost_j: float, context: dict | None = None) -> None:
        self.total_cost_j += cost_j
        if self._last is None:
            return
        key, idx = self._last
        self._last = None
        self._cost_min = cost_j if self._cost_min is None else min(self._cost_min, cost_j)
        self._cost_max = cost_j if self._cost_max is None else max(self._cost_max, cost_j)
        span = self._cost_max - self._cost_min
        x = 0.5 if span <= 0 else (cost_j - self._cost_min) / span
        n, mean = self._stats[key][idx]
        self._stats[key][idx] = [n + 1, mean + (x - mean) / (n + 1)]


# -- regret accounting -------------------------------------------------------------


def oracle_costs(
    arm_costs: dict[str, tuple], regimes: tuple
) -> tuple[list[float], dict]:
    """Per-epoch cost of the per-regime oracle over fixed arms.

    For each regime label, the oracle plays — for *every* epoch of that
    regime — the single fixed arm with the least summed cost over the
    regime (ties break on arm name for determinism).  Returns the
    oracle's per-epoch cost series and the ``{regime: arm}`` choice.
    """
    if not arm_costs:
        raise ConfigurationError("oracle needs at least one fixed arm")
    n = len(regimes)
    for name, costs in arm_costs.items():
        if len(costs) != n:
            raise ConfigurationError(
                f"arm {name!r} has {len(costs)} epochs, regimes have {n}"
            )
    choice: dict = {}
    for regime in sorted(set(regimes)):
        idx = [e for e in range(n) if regimes[e] == regime]
        choice[regime] = min(
            sorted(arm_costs),
            key=lambda a: sum(arm_costs[a][e] for e in idx),
        )
    series = [arm_costs[choice[regimes[e]]][e] for e in range(n)]
    return series, choice


def regret_series(costs, oracle) -> tuple[list[float], float]:
    """Per-epoch cumulative regret of a policy vs the oracle series."""
    if len(costs) != len(oracle):
        raise ConfigurationError("cost and oracle series must align")
    out: list[float] = []
    acc = 0.0
    for c, o in zip(costs, oracle):
        acc += c - o
        out.append(acc)
    return out, acc


# -- the closed-loop replay engine -------------------------------------------------


def _incast_traffic(topology, scenario, epoch: int):
    """The epoch's synchronized fan-in overlay (incast scenarios)."""
    import numpy as np

    from ..flows.flow import Flow, FlowClass
    from ..flows.traffic import TrafficSet

    rng = np.random.default_rng(
        np.random.SeedSequence(
            entropy=[scenario.seed & 0xFFFFFFFF, 0x17CA, epoch]
        )
    )
    hosts = topology.hosts
    edges = tuple(sorted({topology.attachment_switch(h) for h in hosts}))
    target = edges[int(rng.integers(0, len(edges)))]
    victims = [h for h in hosts if topology.attachment_switch(h) == target]
    sources = [h for h in hosts if topology.attachment_switch(h) != target]
    fanin = min(scenario.incast_fanin, len(sources))
    picked = rng.choice(len(sources), size=fanin, replace=False)
    cap = topology.capacity(victims[0], target)
    per_flow = scenario.incast_demand_fraction * cap / fanin
    flows = [
        Flow(
            flow_id=f"incast-e{epoch}-{i}",
            src=sources[int(j)],
            dst=victims[i % len(victims)],
            demand_bps=per_flow,
            flow_class=FlowClass.LATENCY_TOLERANT,
        )
        for i, j in enumerate(picked)
    ]
    return TrafficSet(flows)


def replay_scenario(
    scenario,
    policy,
    *,
    arity: int = 4,
    k_max: float = 4.0,
    epoch_s: float = 600.0,
    n_polls: int = 8,
    n_latency_samples: int = 40,
    seed: int = 0,
    sla_penalty_j: float = 4e5,
    engine: str = "indexed",
    guardrail_on: bool = True,
    surrogate: ServerSurrogate | None = None,
) -> dict:
    """Replay one adversarial scenario under one policy, closed loop.

    Per epoch: churned background + (scaled) query flows + any incast
    overlay form the true traffic; faults recover/land through the
    repair ladder; the policy proposes an operating point, which the
    controller adopts unless the guardrail just acted; the optimizer
    runs on what the (possibly degraded) monitor believes; ground-truth
    network tail is measured on the committed routing and fed to the
    watchdog; the server surrogate prices the governor at the epoch's
    true load; cost = energy + penalty·violation flows back into the
    policy.  Everything is rebuilt deterministically from
    ``(scenario, policy, seed)``, so replays are bit-identical anywhere.
    """
    import numpy as np

    from ..consolidation.heuristic import GreedyConsolidator
    from ..errors import InfeasibleError
    from ..faults import FaultInjector
    from ..flows.dynamics import FlowChurnModel
    from ..flows.traffic import TrafficSet
    from ..netsim.network import NetworkModel
    from ..telemetry import DegradedStatsCollector, TelemetryProfile
    from ..topology.fattree import FatTree
    from ..workloads.search import SearchWorkload
    from .controller import SdnController
    from .guardrail import SlaGuardrail
    from .kcontrol import ScaleFactorController
    from .monitor import TrafficMonitor

    workload = SearchWorkload(FatTree(arity))
    topo = workload.topology
    budget_s = workload.network_budget_s
    constraint_s = workload.latency_constraint_s

    first = policy.propose({})
    profile = scenario.telemetry if scenario.telemetry is not None else TelemetryProfile()
    collector = DegradedStatsCollector(topo, profile)
    monitor = TrafficMonitor(
        window=n_polls, staleness_inflation=first.staleness_inflation
    )
    guardrail = None
    if guardrail_on:
        guardrail = SlaGuardrail(
            budget_s,
            kcontrol=ScaleFactorController(budget_s, k_initial=first.k, k_max=k_max),
        )
    controller = SdnController(
        GreedyConsolidator(topo, engine=engine),
        scale_factor=first.k,
        guardrail=guardrail,
        monitor=monitor,
    )
    churn = FlowChurnModel(topo, seed_or_rng=ensure_rng(seed))
    injector = None
    if scenario.faults is not None:
        injector = FaultInjector(
            topo, scenario.faults.schedule(topo, scenario.n_epochs)
        )
    surrogate = surrogate if surrogate is not None else ServerSurrogate()
    query = workload.query_flows()
    incast_set = frozenset(scenario.incast_epochs)

    costs: list[float] = []
    energies: list[float] = []
    violated_flags: list[bool] = []
    net_tails_ms: list[float] = []
    server_tails_ms: list[float] = []
    ks: list[float] = []
    governors: list[str] = []
    applied_count = deferred_adopt = deferred_epochs = unrecovered = 0
    prev_births = prev_deaths = 0
    prev_transition_j = 0.0
    network_watts = topo.n_switches * controller.consolidator.switch_model.power(True)
    context: dict = {}

    for epoch in range(scenario.n_epochs):
        bg = scenario.background_utilization[epoch]
        load = scenario.search_load[epoch]
        true_traffic = query.merged_with(churn.advance(bg))
        if epoch in incast_set:
            true_traffic = true_traffic.merged_with(
                _incast_traffic(topo, scenario, epoch)
            )
        update = injector.advance(epoch) if injector is not None else None
        if update is not None and update.any_recoveries:
            controller.handle_recoveries(
                update.recovered_switches, update.recovered_links
            )

        point = policy.propose(context)
        if getattr(policy, "adaptive", True):
            if controller.apply_operating_point(point):
                applied_count += 1
            else:
                deferred_adopt += 1
                point = OperatingPoint(
                    k=controller.scale_factor,
                    governor=point.governor,
                    staleness_inflation=monitor.staleness_inflation,
                )

        try:
            out = controller.run_epoch(true_traffic)
            if out.committed:
                network_watts = out.result.objective_watts
        except InfeasibleError:
            deferred_epochs += 1

        net_tail_s = 0.0
        if controller.current_routing is not None:
            # An uncommitted epoch (guardrail reject / infeasible solve)
            # keeps a routing that predates this epoch's churn arrivals;
            # the truth model measures what the fabric actually carries.
            routing = controller.current_routing
            carried = TrafficSet(
                [f for f in true_traffic if f.flow_id in routing]
            )
            truth = NetworkModel(topo, carried, routing, engine=engine)
            rng = np.random.default_rng(
                np.random.SeedSequence(
                    entropy=[seed & 0xFFFFFFFF, 0xADA7, epoch]
                )
            )
            net_tail_s = truth.query_latency_summary(
                n_per_flow=n_latency_samples, seed_or_rng=rng
            ).p95
            if guardrail is not None and math.isfinite(net_tail_s):
                controller.observe_sla(net_tail_s)

        server_watts, server_tail_s = surrogate.step(point.governor, load)
        combined_s = net_tail_s + server_tail_s
        violated = net_tail_s > budget_s or combined_s > constraint_s

        transition_j = controller.transition_energy_joules - prev_transition_j
        prev_transition_j = controller.transition_energy_joules
        energy_j = (
            epoch_s * (network_watts + topo.n_hosts * server_watts) + transition_j
        )
        cost_j = energy_j + (sla_penalty_j if violated else 0.0)
        policy.observe(cost_j, context)

        if update is not None and update.any_failures:
            try:
                controller.handle_failures(
                    true_traffic,
                    switches=update.failed_switches,
                    links=update.failed_links,
                )
            except InfeasibleError:
                unrecovered += 1
        # Telemetry for this epoch arrives during it — the next epoch's
        # optimization (and the next proposal's context) sees it.
        collector.feed(monitor, epoch, true_traffic, n_polls=n_polls)

        acct = collector.accounting()
        degraded = (
            (acct["polls_lost"] + acct["polls_stale"]) / acct["polls_total"]
            if acct["polls_total"]
            else 0.0
        )
        churn_events = (churn.births - prev_births) + (churn.deaths - prev_deaths)
        prev_births, prev_deaths = churn.births, churn.deaths
        context = {
            "tail_s": combined_s,
            "net_tail_s": net_tail_s,
            "violated": violated,
            "point": point,
            "degraded_fraction": degraded,
            "churn_fraction": churn_events / max(churn.n_flows, 1),
        }

        costs.append(cost_j)
        energies.append(energy_j)
        violated_flags.append(violated)
        net_tails_ms.append(1e3 * net_tail_s)
        server_tails_ms.append(1e3 * server_tail_s)
        ks.append(controller.scale_factor)
        governors.append(point.governor)

    return {
        "scenario": scenario.name,
        "kind": scenario.kind,
        "fingerprint": scenario.fingerprint(),
        "policy": policy.name,
        "epochs": scenario.n_epochs,
        "regimes": tuple(scenario.regimes),
        "costs_j": tuple(costs),
        "energy_j": tuple(energies),
        "violated": tuple(violated_flags),
        "net_tail_ms": tuple(net_tails_ms),
        "server_tail_ms": tuple(server_tails_ms),
        "k_series": tuple(ks),
        "governor_series": tuple(governors),
        "total_cost_j": sum(costs),
        "total_energy_j": sum(energies),
        "violation_epochs": sum(violated_flags),
        "adaptive_applied": applied_count,
        "adaptive_deferred": deferred_adopt,
        "deferred_epochs": deferred_epochs,
        "unrecovered_notifications": unrecovered,
        "transition_energy_j": controller.transition_energy_joules,
        "counters": controller.telemetry_counters(),
    }
