"""Deterministic random-number plumbing.

Every stochastic component of the reproduction (service-time sampling,
arrival processes, network latency tails, trace synthesis) draws from an
explicit :class:`numpy.random.Generator`.  This module provides the two
conventions the code base follows:

* ``ensure_rng`` — accept ``None`` / an int seed / an existing generator
  at any public API boundary.
* ``spawn`` — derive independent child streams from a parent, so that
  e.g. each of the 16 servers in the cluster simulation has its own
  stream and adding a server does not perturb the others' draws.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn", "DEFAULT_SEED"]

#: Seed used when a caller passes ``None`` and wants reproducibility by
#: default.  Chosen arbitrarily; fixed so that examples and benchmarks
#: print identical numbers run-to-run.
DEFAULT_SEED = 0x5EED


def ensure_rng(seed_or_rng=None) -> np.random.Generator:
    """Coerce ``None`` / int seed / Generator into a Generator.

    ``None`` maps to a generator seeded with :data:`DEFAULT_SEED` rather
    than OS entropy: experiments in this repository must be
    reproducible, and an accidentally unseeded run that cannot be
    reproduced is worse than a shared default seed.
    """
    if seed_or_rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Uses :meth:`numpy.random.Generator.spawn`, which splits the parent's
    SeedSequence; children are independent of each other and of the
    parent's subsequent draws.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return list(rng.spawn(n))
