"""Adaptive scale-factor control benchmark (Section II's dynamic K)."""

from conftest import run_once, show

from repro.experiments import adaptive_k


def test_adaptive_k(benchmark):
    result = run_once(benchmark, adaptive_k.run, epoch_minutes=90)
    show(result)
    rows = {r[0]: r for r in result.rows}
    adaptive, fixed1, fixed4 = rows["adaptive"], rows["fixed-1"], rows["fixed-4"]

    # The closed loop lands between the fixed extremes on both axes:
    # switch count near fixed-1, tail compliance near fixed-4.
    assert fixed1[2] <= adaptive[2] <= fixed4[2] + 0.5
    assert adaptive[4] <= fixed1[4]          # no worse on violations
    assert adaptive[3] <= fixed1[3] + 0.01   # and not slower on average
    assert adaptive[5] > 0                   # it actually adapted

    benchmark.extra_info["adaptive_mean_k"] = round(adaptive[1], 2)
    benchmark.extra_info["adaptive_over_budget"] = adaptive[4]
    benchmark.extra_info["fixed1_over_budget"] = fixed1[4]
