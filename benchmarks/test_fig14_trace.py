"""Fig. 14 benchmark — the diurnal trace generator."""

from conftest import run_once, show

from repro.experiments import fig14_trace


def test_fig14_trace(benchmark):
    result = run_once(benchmark, fig14_trace.run)
    show(result)

    search = result.column("search_load_pct")
    background = result.column("background_pct")

    # 24 hourly rows spanning the paper's ranges.
    assert len(search) == 24
    assert min(search) >= 20.0 - 1.0 and max(search) <= 100.0 + 1e-9
    assert min(background) >= 10.0 - 1.0 and max(background) <= 60.0 + 1e-9
    # Genuine diurnal swing: peak at least 3x the trough.
    assert max(search) > 3 * min(search)
    # Peak lands in the daytime hours (10:00-18:00).
    peak_hour = result.column("hour")[search.index(max(search))]
    assert 10 <= peak_hour <= 18

    benchmark.extra_info["search_range_pct"] = [round(min(search)), round(max(search))]
    benchmark.extra_info["background_range_pct"] = [round(min(background)), round(max(background))]
