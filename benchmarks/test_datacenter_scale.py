"""Datacenter-scale generalization benchmark (k=4 vs k=6)."""

from conftest import run_once, show

from repro.experiments import datacenter_scale


def test_datacenter_scale(benchmark):
    result = run_once(benchmark, datacenter_scale.run)
    show(result)
    rows = {r[0]: r for r in result.rows}

    # Both fabrics meet the SLA with a double-digit joint saving.
    for k, row in rows.items():
        assert row[7], f"k={k} missed SLA"
        assert row[6] > 10.0, f"k={k} saving collapsed: {row[6]}%"
    # The k=4 case picks the minimal subnet (the paper's result); at
    # k=6 the coarse 4-policy ladder forces a shallower choice — the
    # structure still favors the smallest *feasible* subnet.
    assert rows[4][3] == "aggregation-3"
    assert rows[6][3] in ("aggregation-1", "aggregation-2", "aggregation-3")

    benchmark.extra_info["saving_pct_k4"] = round(rows[4][6], 1)
    benchmark.extra_info["saving_pct_k6"] = round(rows[6][6], 1)
