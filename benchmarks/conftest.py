"""Benchmark-suite helpers.

Each benchmark regenerates one figure of the paper at a reduced scale,
prints the resulting table (so `pytest benchmarks/ --benchmark-only -s`
reproduces the paper's rows), asserts the qualitative *shape* the paper
reports, and records headline numbers in ``benchmark.extra_info``.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Experiment drivers are long-running and deterministic; repeated
    rounds would only burn time without adding information.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def show(result) -> None:
    """Print an ExperimentResult (or tuple of them)."""
    if isinstance(result, tuple):
        for r in result:
            print()
            print(r)
    else:
        print()
        print(result)
