"""Scaling study (Section IV-B motivation) and packet-level validation."""

from conftest import run_once, show

from repro.experiments import scaling, validation
from repro.experiments import churn as churn_mod


def test_solver_scaling(benchmark):
    result = run_once(
        benchmark,
        scaling.run,
        heuristic_cases=((4, 50), (4, 200), (6, 400)),
        milp_cases=((4, 10), (4, 30)),
        milp_time_limit_s=120.0,
    )
    show(result)
    rows = list(result.rows)
    heuristic = [r for r in rows if r[0] == "heuristic"]
    milp = [r for r in rows if r[0] == "milp"]

    # The heuristic stays sub-second even at 400 flows on k=6, while
    # the MILP's runtime grows quickly with the flow count — the
    # paper's deployment argument.
    assert max(r[3] for r in heuristic) < 1.0
    assert milp[-1][3] > 3 * milp[0][3] or milp[-1][3] > 1.0
    # Same instance (k=4, comparable flows): heuristic is faster.
    assert heuristic[0][3] < milp[0][3]

    benchmark.extra_info["heuristic_max_s"] = round(max(r[3] for r in heuristic), 3)
    benchmark.extra_info["milp_40flow_s"] = round(milp[-1][3], 2)


def test_packet_level_validation(benchmark):
    result = run_once(
        benchmark, validation.run, utilizations=(0.1, 0.5, 0.85), duration_s=4.0
    )
    show(result)
    packet_means = result.column("packet_mean_us")
    model_means = result.column("model_mean_us")

    # The knee emerges from packet-level FIFO queues...
    assert packet_means[-1] > 4 * packet_means[0]
    # ...and the flow-level model tracks it within its burstiness
    # calibration (same order of magnitude at every load).
    for packet, model in zip(packet_means, model_means):
        assert model / 6 < packet < model * 6

    benchmark.extra_info["packet_mean_us"] = [round(m) for m in packet_means]
    benchmark.extra_info["model_mean_us"] = [round(m) for m in model_means]


def test_controller_churn(benchmark):
    result = run_once(
        benchmark, churn_mod.run, scale_factors=(1.0, 4.0), n_epochs=36
    )
    show(result)
    rows = {r[0]: r for r in result.rows}

    # Every epoch is eventually configured (fallback + best effort).
    for k, row in rows.items():
        assert row[1] + row[7] == 36  # epochs + deferred
        assert row[7] <= 2
    # Larger K keeps more switches on through the day.
    assert rows[4.0][2] >= rows[1.0][2]

    benchmark.extra_info["avg_switches_k1"] = round(rows[1.0][2], 1)
    benchmark.extra_info["avg_switches_k4"] = round(rows[4.0][2], 1)
