"""Fig. 2 benchmark — scale factor K separates mice from the elephant."""

from conftest import run_once, show

from repro.experiments import fig02_scale_factor


def test_fig02_scale_factor(benchmark):
    result = run_once(benchmark, fig02_scale_factor.run)
    show(result)

    rows = {row[0]: row for row in result.rows}
    k1, k3 = rows[1.0], rows[3.0]

    # K=1: both latency-sensitive flows share the elephant's path and
    # the subnet is smallest.
    assert k1[2] and k1[3]
    # K=3: both mice are pushed onto elephant-free paths, more switches on.
    assert not k3[2] and not k3[3]
    assert k3[1] > k1[1]
    # Their p95 latency collapses once separated.
    assert k3[4] < k1[4] / 10
    assert k3[5] < k1[5] / 10

    benchmark.extra_info["switches_k1"] = k1[1]
    benchmark.extra_info["switches_k3"] = k3[1]
    benchmark.extra_info["blue_p95_ms_k1"] = round(k1[4], 2)
    benchmark.extra_info["blue_p95_ms_k3"] = round(k3[4], 3)
