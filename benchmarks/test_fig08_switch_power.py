"""Fig. 8 benchmark — switch power is utilization-independent."""

from conftest import run_once, show

from repro.experiments import fig08_switch_power


def test_fig08_switch_power(benchmark):
    result = run_once(benchmark, fig08_switch_power.run)
    show(result)

    powers = result.column("power_w")
    deltas = result.column("delta_vs_idle_w")

    # Idle draw matches the measured 97.5 W.
    assert abs(powers[0] - 97.5) < 1e-9
    # Full-load delta is the measured 0.59 W — under 1% of idle.
    assert abs(deltas[-1] - 0.59) < 1e-9
    assert deltas[-1] / powers[0] < 0.01

    benchmark.extra_info["idle_w"] = powers[0]
    benchmark.extra_info["full_load_delta_w"] = deltas[-1]
