"""Fig. 12 benchmark — server power management comparison.

Reduced scale: shorter simulations and fewer sweep points than the
module defaults; the assertions check the paper's ordering and trends.
"""

from conftest import run_once, show

from repro.experiments import fig12_server_power


def _by_gov(result, key_col=1):
    out = {}
    for row in result.rows:
        out.setdefault(row[0], {})[row[key_col]] = row
    return out


def test_fig12a_utilization_sweep(benchmark):
    result = run_once(
        benchmark,
        fig12_server_power.run_utilization_sweep,
        utilizations=(0.1, 0.3, 0.5),
        duration_s=30.0,
    )
    show(result)
    table = _by_gov(result)

    for u in (10.0, 30.0, 50.0):
        power = {gov: rows[u][2] for gov, rows in table.items()}
        # Paper ordering at each load: EPRONS-Server lowest, then
        # Rubik+, then Rubik; no-PM highest.
        assert power["eprons-server"] <= power["rubik+"] + 0.05
        assert power["rubik+"] <= power["rubik"] + 0.05
        assert power["rubik"] < power["no-pm"]
        # Model-based schemes beat the coarse feedback loop at mid/high
        # load (paper: "except at very low loads").
        if u >= 30.0:
            assert power["eprons-server"] < power["timetrader"]
        # Every governor still meets the SLA.
        for gov, rows in table.items():
            assert rows[u][4], f"{gov} missed SLA at {u}%"

    # Power grows with utilization for every governor.
    for gov, rows in table.items():
        series = [rows[u][2] for u in (10.0, 30.0, 50.0)]
        assert series == sorted(series)

    benchmark.extra_info["cpu_w_at_30pct"] = {
        gov: round(rows[30.0][2], 2) for gov, rows in table.items()
    }


def test_fig12b_constraint_sweep(benchmark):
    result = run_once(
        benchmark,
        fig12_server_power.run_constraint_sweep,
        constraints_ms=(19.0, 25.0, 31.0, 40.0),
        duration_s=30.0,
    )
    show(result)
    table = _by_gov(result)

    # EPRONS-Server's power decreases as the constraint loosens and is
    # the lowest at every feasible constraint >= 19 ms (paper).
    epr = [table["eprons-server"][c][2] for c in (19.0, 25.0, 31.0, 40.0)]
    assert epr == sorted(epr, reverse=True)
    for c in (19.0, 25.0, 31.0, 40.0):
        power = {gov: rows[c][2] for gov, rows in table.items()}
        assert power["eprons-server"] == min(power.values())

    benchmark.extra_info["eprons_w_19ms"] = round(epr[0], 2)
    benchmark.extra_info["eprons_w_40ms"] = round(epr[-1], 2)


def test_fig12c_heatmap(benchmark):
    result = run_once(
        benchmark,
        fig12_server_power.run_heatmap,
        utilizations=(0.1, 0.3, 0.5),
        constraints_ms=(20.0, 30.0, 40.0),
        duration_s=25.0,
    )
    show(result)
    table = {(row[0], row[1]): row[2] for row in result.rows}

    # Power rises with utilization at a fixed constraint and falls as
    # the constraint loosens at a fixed utilization.
    for c in (20.0, 30.0, 40.0):
        series = [table[(u, c)] for u in (10.0, 30.0, 50.0)]
        assert series == sorted(series)
    for u in (10.0, 30.0, 50.0):
        series = [table[(u, c)] for c in (20.0, 30.0, 40.0)]
        assert series == sorted(series, reverse=True)
