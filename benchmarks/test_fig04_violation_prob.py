"""Fig. 4/5 benchmark — violation-probability model."""

from conftest import run_once, show

from repro.experiments import fig04_violation_prob


def test_fig04_vp_vs_frequency(benchmark):
    result = run_once(benchmark, fig04_violation_prob.run_fig4)
    show(result)

    vp_r1 = result.column("vp_r1_pct")
    vp_r2e = result.column("vp_r2e_pct")
    avg = result.column("avg_vp_pct")

    # All three curves decrease with frequency (Fig. 4's shape).
    assert vp_r1 == sorted(vp_r1, reverse=True)
    assert vp_r2e == sorted(vp_r2e, reverse=True)
    # The equivalent request R2e always dominates R1, and the average
    # sits strictly between them — the gap EPRONS-Server exploits.
    for a, b, m in zip(vp_r1, vp_r2e, avg):
        assert a <= m <= b

    benchmark.extra_info["vp_r1_at_fmax_pct"] = round(vp_r1[-1], 2)
    benchmark.extra_info["vp_r2e_at_fmax_pct"] = round(vp_r2e[-1], 2)


def test_fig05_vp_vs_work_budget(benchmark):
    result = run_once(benchmark, fig04_violation_prob.run_fig5)
    show(result)

    r1 = result.column("vp_r1e_pct")
    r2 = result.column("vp_r2e_pct")
    r3 = result.column("vp_r3e_pct")

    # Each curve is a CCDF: monotone nonincreasing from 100%.
    for curve in (r1, r2, r3):
        assert curve[0] == 100.0
        assert all(a >= b - 1e-9 for a, b in zip(curve, curve[1:]))
    # Deeper queue positions stochastically dominate.
    for a, b, c in zip(r1, r2, r3):
        assert a <= b + 1e-9 <= c + 2e-9
