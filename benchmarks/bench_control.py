"""Benchmark: churn-proportional control-plane epochs (delta consolidation).

Measures the controller's per-epoch *decision* latency — one
consolidation solve — for the full re-solve engine versus the
warm-started :class:`~repro.consolidation.delta.DeltaConsolidator`, as
a function of fat-tree arity and background-flow churn rate.  The point
of the delta engine is that epoch cost scales with **churn** (flows
arrived + departed per epoch), not with the flow count; a full solve
re-packs every flow every epoch regardless.

Churn is generated with ``FlowChurnModel(demand_jitter=0)`` at constant
utilization, so surviving flows keep their exact demands and the churn
rate is purely the death rate ``1 / mean_lifetime_epochs`` — the knob
this benchmark sweeps.  Query flows persist across epochs, as in the
paper's workload.

Also verifies, per arity, the golden-equivalence contract: the delta
engine at ``drift_bound=0`` must produce results bit-identical (SHA-256
over routing/subnet/objective) to the full engine on the same epoch
sequence.

With ``--engine sharded`` each arity additionally times the *cold*
full solve (fresh consolidator, path sets not yet compiled — the
worst-case control-plane tail the delta engine falls back to) against
the pod-sharded engine at each ``--shards`` count, asserting the
``shards=1`` digest is bit-identical to the indexed solve; ``--k48``
appends a cold-solve-only row on a k=48 fabric with 10^5 background
flows.

Run as a module (repository root on ``sys.path``, ``src`` on
``PYTHONPATH``)::

    PYTHONPATH=src python -m benchmarks.bench_control --k 8 16
    PYTHONPATH=src python -m benchmarks.bench_control --quick --engine sharded  # CI smoke
    PYTHONPATH=src python -m benchmarks.bench_control --engine sharded --k48

Emits ``BENCH_control.json``.  Targets: at k=16+ under 10 % churn the
delta engine's steady-state epoch decision is >= 5x faster than the
full solve (and stays sub-second at k=32); the sharded engine is
>= 3x faster than the indexed cold solve at k=32 with >= 4 jobs.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import time

import numpy as np

from repro.consolidation import (
    DeltaConsolidator,
    GreedyConsolidator,
    shutdown_shard_pool,
)
from repro.control.rules import diff_routings
from repro.netfast import clear_index_registry
from repro.flows.dynamics import FlowChurnModel
from repro.flows.flow import Flow, FlowClass
from repro.flows.traffic import TrafficSet
from repro.topology.fattree import FatTree
from repro.workloads.search import SearchWorkload

#: Per-query demand (bit/s) keeping the aggregator's access-link fan-in
#: ((n_hosts - 1) reply flows + background) routable at every
#: benchmarked arity (same sizing as bench_network, extended to k=32).
QUERY_DEMAND_BPS = {4: 10e6, 6: 10e6, 8: 4e6, 10: 2e6, 12: 1e6, 14: 7e5, 16: 5e5, 32: 5e4}

SCALE_FACTOR = 2.0
BACKGROUND_UTILIZATION = 0.2
SEED = 1
DRIFT_BOUND = 0.5
N_EQUIVALENCE_EPOCHS = 3


def result_digest(result) -> str:
    """SHA-256 over everything a consolidation decision commits."""
    payload = {
        "routing": sorted((fid, list(p)) for fid, p in result.routing.items()),
        "switches_on": sorted(result.subnet.switches_on),
        "links_on": sorted(map(list, result.subnet.links_on)),
        "scale_factor": result.scale_factor,
        "objective_watts": result.objective_watts,
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


def epoch_traffic(k: int, churn_rate: float, n_epochs: int):
    """Pre-generated per-epoch TrafficSets at one (arity, churn) point."""
    ft = FatTree(k)
    demand = QUERY_DEMAND_BPS.get(k, 5e5)
    query = SearchWorkload(ft, query_demand_bps=demand).query_flows()
    churn = FlowChurnModel(
        ft,
        mean_lifetime_epochs=1.0 / churn_rate,
        demand_jitter=0.0,
        seed_or_rng=SEED,
    )
    epochs = [
        churn.advance(BACKGROUND_UTILIZATION).merged_with(query)
        for _ in range(n_epochs)
    ]
    return ft, epochs


def bench_point(ft, epochs, churn_rate: float) -> dict:
    """Time full-solve vs delta epochs over one pre-generated sequence."""
    full = GreedyConsolidator(ft)
    full_times, full_results = [], []
    for traffic in epochs:
        t0 = time.perf_counter()
        res = full.consolidate(traffic, SCALE_FACTOR)
        full_times.append(time.perf_counter() - t0)
        full_results.append(res)

    delta = DeltaConsolidator(ft, drift_bound=DRIFT_BOUND)
    delta_times, delta_stats, delta_results, max_obj_drift = [], [], [], 0.0
    for traffic, full_res in zip(epochs, full_results):
        t0 = time.perf_counter()
        res = delta.consolidate(traffic, SCALE_FACTOR)
        delta_times.append(time.perf_counter() - t0)
        delta_stats.append(delta.last_stats)
        delta_results.append(res)
        base = max(full_res.objective_watts, 1e-12)
        max_obj_drift = max(max_obj_drift, (res.objective_watts - full_res.objective_watts) / base)

    # Forwarding-rule diff riding on the delta epochs: feeding the
    # engine's proven-unchanged flow ids to diff_routings skips the
    # per-hop path comparison for stable flows, so the epoch diff
    # scales with churn too.  Both paths must emit identical updates.
    naive_diff_s = assisted_diff_s = 0.0
    prev = None
    for res, stats in zip(delta_results, delta_stats):
        t0 = time.perf_counter()
        naive = diff_routings(prev, res.routing)
        naive_diff_s += time.perf_counter() - t0
        t0 = time.perf_counter()
        assisted = diff_routings(prev, res.routing, unchanged=stats.unchanged_ids)
        assisted_diff_s += time.perf_counter() - t0
        if (naive.added, naive.removed, naive.rerouted) != (
            assisted.added, assisted.removed, assisted.rerouted
        ):
            raise AssertionError(
                "unchanged-assisted rule diff diverged from the full diff"
            )
        prev = res.routing

    # Golden equivalence: drift_bound=0 is bit-identical to full.
    delta0 = DeltaConsolidator(ft, drift_bound=0.0)
    for traffic, full_res in zip(epochs[:N_EQUIVALENCE_EPOCHS], full_results):
        res0 = delta0.consolidate(traffic, SCALE_FACTOR)
        if result_digest(res0) != result_digest(full_res):
            raise AssertionError(
                f"drift_bound=0 delta result diverged from the full solve "
                f"(k-ary topology with {len(traffic)} flows)"
            )

    # Steady state excludes the cold first epoch (index/path-cache build
    # for both engines, mandatory full solve for the delta engine).
    steady_full = full_times[1:]
    steady_delta = delta_times[1:]
    n_delta = sum(1 for s in delta_stats if s.mode == "delta")
    churned = [s.n_churned for s in delta_stats[1:]]
    full_mean = sum(steady_full) / len(steady_full)
    delta_mean = sum(steady_delta) / len(steady_delta)
    return {
        "churn_rate": churn_rate,
        "n_flows": len(epochs[0]),
        "n_epochs": len(epochs),
        "full_epoch_s": full_mean,
        "delta_epoch_s": delta_mean,
        "speedup": full_mean / delta_mean,
        "delta_epoch_fraction": n_delta / len(epochs),
        "mean_churned_flows": sum(churned) / max(1, len(churned)),
        "fallbacks": delta.counters()["fallbacks"],
        "rulediff_full_s": naive_diff_s / len(epochs),
        "rulediff_unchanged_s": assisted_diff_s / len(epochs),
        "rulediff_speedup": naive_diff_s / max(assisted_diff_s, 1e-12),
        "max_objective_drift": max_obj_drift,
        "drift_bound": DRIFT_BOUND,
        "equivalence_epochs_checked": min(N_EQUIVALENCE_EPOCHS, len(epochs)),
    }


def _cold_copy(ft):
    """A content-identical topology with every process-wide warm state
    dropped: the identity-keyed index map never sees the new object and
    the content registry is cleared, so the next solve pays the full
    one-time path-set compilation — the cold tail this block measures.
    (The delta sweeps earlier in the same bench process leave the
    original ``ft``'s compiled index warm; timing against it would
    understate the cold solve by an order of magnitude.)"""
    clear_index_registry()
    return FatTree(ft.k)


def bench_sharded(ft, traffic, shards_list, jobs_override=None) -> dict:
    """Cold/full-solve scaling of the sharded engine vs the indexed one.

    ``cold_full_s`` is a fresh indexed consolidator's first solve on a
    cold process (path caches and the process-wide compiled-index
    registry cold — the control-plane tail this engine exists to kill);
    ``warm_full_s`` is the same consolidator's repeat solve, the
    steady-state full-epoch figure.  Per shard count the block reports
    the first sharded solve on an equally cold slate (``sharded_cold_s``:
    worker pool, worker path caches and parent index all cold) and the
    steady-state repeat (``sharded_s``: live pool, warm caches — the
    per-epoch figure a long-running controller sees).  ``shards=1``
    carries the bit-identity contract and is asserted against the
    indexed digest here, on every bench run.
    """
    indexed = GreedyConsolidator(_cold_copy(ft))
    t0 = time.perf_counter()
    reference = indexed.consolidate(traffic, SCALE_FACTOR)
    cold_full_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    indexed.consolidate(traffic, SCALE_FACTOR)
    warm_full_s = time.perf_counter() - t0
    ref_digest = result_digest(reference)
    print(f"    indexed: cold={cold_full_s:7.2f}s warm={warm_full_s:7.2f}s")

    # the engine clamps shards to the core-group count; dropping the
    # excess here keeps the rows honestly labeled
    shards_list = [s for s in shards_list if s <= ft.n_core_groups] or [1]
    points = []
    for n_shards in shards_list:
        jobs = jobs_override if jobs_override is not None else max(1, n_shards)
        shutdown_shard_pool()
        cons = GreedyConsolidator(
            _cold_copy(ft), engine="sharded", shards=n_shards, shard_jobs=jobs
        )
        t0 = time.perf_counter()
        cold = cons.consolidate(traffic, SCALE_FACTOR)
        sharded_cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = cons.consolidate(traffic, SCALE_FACTOR)
        sharded_s = time.perf_counter() - t0
        if result_digest(warm) != result_digest(cold):
            raise AssertionError(
                f"sharded engine is not deterministic across repeats "
                f"(shards={n_shards}, jobs={jobs})"
            )
        if n_shards == 1 and result_digest(cold) != ref_digest:
            raise AssertionError(
                "shards=1 sharded result diverged from the indexed engine "
                "(bit-identity contract)"
            )
        stats = cons.last_sharded_stats
        drift = (
            cold.objective_watts - reference.objective_watts
        ) / max(reference.objective_watts, 1e-12)
        points.append(
            {
                "shards": n_shards,
                "jobs": jobs,
                "sharded_cold_s": sharded_cold_s,
                "sharded_s": sharded_s,
                "speedup_cold": cold_full_s / sharded_cold_s,
                "speedup": cold_full_s / sharded_s,
                "speedup_warm": warm_full_s / sharded_s,
                "objective_drift": drift,
                "digest_matches_indexed": n_shards == 1,
                "n_interpod": stats.n_interpod,
                "n_intrapod": stats.n_intrapod,
                "n_spilled": stats.n_spilled,
                "n_rescued": stats.n_rescued,
            }
        )
        print(
            f"    sharded s={n_shards} j={jobs}: cold={sharded_cold_s:7.2f}s "
            f"warm={sharded_s:7.2f}s speedup={cold_full_s / sharded_s:4.1f}x "
            f"(cold {cold_full_s / sharded_cold_s:4.1f}x) drift={drift:+.3f}"
        )
    shutdown_shard_pool()
    return {
        "n_flows": len(traffic),
        "cold_full_s": cold_full_s,
        "warm_full_s": warm_full_s,
        "drift_bound": 0.5,
        "points": points,
    }


def scale_traffic_k48(
    k: int = 48, n_pairs: int = 400, n_flows: int = 100_000,
    demand_bps: float = 1e5, seed: int = 7,
):
    """Bounded-pair background traffic at k=48 — the same construction
    as ``tests/test_scale_k48.py`` (many flows per pair, as with
    aggregated service traffic; an unconstrained 10^5-pair instance
    would be path-cache-intractable for *any* engine)."""
    ft = FatTree(k)
    hosts = sorted(ft.hosts)
    rng = np.random.default_rng(seed)
    drawn = rng.choice(len(hosts), size=(n_pairs, 2))
    pairs = [(hosts[s], hosts[d]) for s, d in drawn if hosts[s] != hosts[d]]
    flows = [
        Flow(
            f"bg-{i}", *pairs[i % len(pairs)], demand_bps=demand_bps,
            flow_class=FlowClass.LATENCY_TOLERANT,
        )
        for i in range(n_flows)
    ]
    return ft, TrafficSet(flows)


def bench_arity(k: int, churn_rates, n_epochs: int, engine: str = "indexed",
                shards_list=(1, 2, 4, 8), jobs=None) -> dict:
    row: dict = {"k": k, "n_hosts": FatTree(k).n_hosts, "points": []}
    for rate in churn_rates:
        ft, epochs = epoch_traffic(k, rate, n_epochs)
        point = bench_point(ft, epochs, rate)
        row["points"].append(point)
        print(
            f"  k={k} churn={rate:.0%}: full={point['full_epoch_s'] * 1e3:8.1f}ms "
            f"delta={point['delta_epoch_s'] * 1e3:7.1f}ms "
            f"speedup={point['speedup']:5.1f}x "
            f"(churned~{point['mean_churned_flows']:.0f}/{point['n_flows']} flows, "
            f"{point['delta_epoch_fraction']:.0%} delta epochs)"
        )
    if engine == "sharded":
        ft, epochs = epoch_traffic(k, churn_rates[0], 1)
        print(f"  k={k} sharded cold-solve scaling:")
        row["sharded"] = bench_sharded(ft, epochs[0], shards_list, jobs)
    return row


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--k", type=int, nargs="+", default=[8, 16])
    parser.add_argument("--churn", type=float, nargs="+", default=[0.05, 0.10, 0.25])
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: k=8 only, 8 epochs"
    )
    parser.add_argument(
        "--engine", choices=("indexed", "sharded"), default="indexed",
        help="'sharded' adds the per-arity cold-solve scaling block "
        "(cold_full_s vs sharded_s per shard count, shards=1 digest assert)",
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4, 8],
        help="shard counts for the sharded scaling block",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker-pool size for the sharded block (default: one per shard)",
    )
    parser.add_argument(
        "--k48", action="store_true",
        help="append a k=48 cold-only sharded row (bounded-pair traffic, "
        "10^5 flows; slow)",
    )
    parser.add_argument("--out", default="BENCH_control.json")
    args = parser.parse_args(argv)
    if args.quick:
        args.k = [8]
        args.epochs = 8
        args.shards = [s for s in args.shards if s <= 4]

    results = []
    for k in args.k:
        print(f"k={k}:")
        results.append(
            bench_arity(
                k, args.churn, args.epochs,
                engine=args.engine, shards_list=args.shards, jobs=args.jobs,
            )
        )

    if args.k48:
        print("k=48 (cold-only, bounded-pair):")
        ft48, traffic48 = scale_traffic_k48()
        results.append(
            {
                "k": 48,
                "n_hosts": ft48.n_hosts,
                "cold_only": True,
                "points": [],
                "sharded": bench_sharded(ft48, traffic48, args.shards, args.jobs),
            }
        )

    payload = {
        "benchmark": "bench_control",
        "scale_factor": SCALE_FACTOR,
        "background_utilization": BACKGROUND_UTILIZATION,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    # Headline acceptance target: >= 5x at k=16+ under ~10 % churn.
    for row in results:
        if row["k"] < 16:
            continue
        for point in row["points"]:
            if abs(point["churn_rate"] - 0.10) < 1e-9 and point["speedup"] < 5.0:
                print(
                    f"WARNING: k={row['k']} @ 10% churn speedup "
                    f"{point['speedup']:.1f}x is below the 5x target"
                )


if __name__ == "__main__":
    main()
