"""Benchmark: zero-pickle shm fabric + fused batch dispatch for joint sweeps.

Times the two joint-sweep experiment drivers end to end at ``--jobs 8``
in two executor configurations:

* **reference** — ``shm=False, batch=False``: every sweep point is an
  independent scalar task; each pool worker rebuilds the compiled
  topology index and VP tables from spec and re-solves the per-group
  consolidation its siblings already solved.
* **fabric** — ``shm=True, batch=True``: the parent publishes the
  compiled artifacts into ``multiprocessing.shared_memory`` once
  (:func:`repro.exec.ops.publish_joint_artifacts`), workers attach by
  content key, and cache-miss points that share (background, level, …)
  are fused into one batch call that hoists the consolidation solve
  and traffic build out of the per-point loop.

A third configuration — **fabric + multipoint** — keeps the fused
dispatch but runs each fused batch's whole constraint grid as one
lockstep :func:`repro.simfast.run_multipoint_simulation` pass
(``server_engine="multipoint"``), attacking the DES floor itself; its
row reports ``des_speedup_vs_fabric`` (same overheads, only the DES
changes) alongside the reference comparison.

All configurations must produce **bit-identical** experiment rows —
asserted here over a SHA-256 of every row of both figures; the fabric
only ever skips recomputation of content-identical data.  Reference
runs are timed *before* any fabric run so forked workers cannot
inherit warm parent-side registries.

Honest accounting (Amdahl): a joint sweep is fabric overhead (task
dispatch, worker artifact rebuilds, redundant per-point consolidation
solves) *plus* the per-point DES simulations, which are irreducible
per point and identical in both modes.  At the paper-default 15 s
simulation windows the sweep is DES-bound, so whole-driver wall-clock
gains are bounded no matter how good the fabric is.  This benchmark
therefore reports, per experiment:

* whole-driver wall-clock in both modes at the **paper-default** grid,
* the same at a **fine-grain** grid (1 s windows — the online
  evaluation regime the fabric targets),
* the inline **DES floor** (the same simulations run hoisted and
  serial, no dispatch at all) and the derived **fabric-overhead
  speedup** = (reference − floor) / (fabric − floor),
* structural fabric metrics: fused dispatch units vs scalar tasks,
  and per-worker artifact attach vs rebuild time.

The persistent result cache is disabled throughout: the benchmark
measures computation, not disk reads.  The fabric total *includes* the
parent-side prewarm/publish (timed explicitly, reported as
``prewarm_s``) — the speedup is work deduplication, not deferral.

Run as a module (repository root on ``sys.path``, ``src`` on
``PYTHONPATH``)::

    PYTHONPATH=src python -m benchmarks.bench_joint
    PYTHONPATH=src python -m benchmarks.bench_joint --quick   # CI smoke

Emits ``BENCH_joint.json``.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import platform
import time

from repro.core.joint import JointSimParams, evaluate_operating_point
from repro.exec import ExecContext, shutdown_shared_store, use_context
from repro.exec.executor import _fuse_round
from repro.experiments import datacenter_scale, fig13_joint_power

JOBS = 8
SEED = 1

REFERENCE_CTX = dict(cache=False, shm=False, batch=False)
FABRIC_CTX = dict(cache=False, shm=True, batch=True)

#: The online/fine-grain operating point: short windows, where the
#: sweep fabric rather than the DES bounds wall-clock.
FINE_PARAMS = JointSimParams(sim_cores=1, duration_s=1.0, warmup_s=0.25)


def rows_digest(result) -> str:
    """SHA-256 over every row the experiment would print/plot."""
    payload = {
        "figure": result.figure,
        "columns": list(result.columns),
        "rows": [[repr(v) for v in row] for row in result.rows],
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


def grids(quick: bool):
    """(experiment, grid label, run fn, spec, task-builder spec) rows."""
    if quick:
        fig_spec = dict(
            backgrounds=(0.2,),
            constraints_ms=(25.0, 31.0, 40.0),
            params=JointSimParams(sim_cores=1, duration_s=4.0, warmup_s=1.0),
            seed=SEED,
        )
        return [
            ("fig13", "quick", fig13_joint_power.run, fig_spec),
            ("datacenter_scale", "quick", datacenter_scale.run,
             dict(arities=(4,), duration_s=4.0, seed=SEED)),
        ]
    return [
        ("fig13", "default", fig13_joint_power.run, dict(seed=SEED)),
        ("datacenter_scale", "default", datacenter_scale.run, dict(seed=SEED)),
        ("fig13", "fine-grain", fig13_joint_power.run,
         dict(params=FINE_PARAMS, seed=SEED)),
        ("datacenter_scale", "fine-grain", datacenter_scale.run,
         dict(duration_s=1.0, seed=SEED)),
    ]


def run_mode(run_fn, spec: dict, mode_kwargs: dict, jobs: int):
    """One timed end-to-end driver run under a fresh executor context."""
    ctx = ExecContext(jobs=jobs, **mode_kwargs)
    with use_context(ctx):
        t0 = time.perf_counter()
        result = run_fn(**spec)
        elapsed = time.perf_counter() - t0
    return result, elapsed


def measure_prewarm(name: str, spec: dict) -> float:
    """Parent-side prewarm + publish cost, timed explicitly and added
    into the fabric total so nothing escapes the stopwatch."""
    from repro.exec.ops import publish_joint_artifacts

    t0 = time.perf_counter()
    if name == "fig13":
        backgrounds = spec.get("backgrounds", fig13_joint_power.DEFAULT_BACKGROUNDS)
        publish_joint_artifacts(4, backgrounds, traffic_seed=spec.get("seed", SEED))
    else:
        arities = spec.get("arities", (4, 6))
        background = spec.get("background", 0.2)
        for k in arities:
            publish_joint_artifacts(k, (background,), traffic_seed=spec.get("seed", SEED))
    return time.perf_counter() - t0


def measure_des_floor() -> tuple[float, int]:
    """The fig13 fine-grain simulations run hoisted, serial and inline:
    no pool, no dispatch, consolidation/traffic solved once per group.
    This is the irreducible DES cost both executor modes must pay."""
    from repro.exec.ops import _cached_consolidation, governor_factory, workload_for
    from repro.topology import AGGREGATION_LEVELS

    with use_context(ExecContext(jobs=1, **REFERENCE_CTX)):
        workload = workload_for(4)
        for bg in fig13_joint_power.DEFAULT_BACKGROUNDS:
            workload.traffic(bg, seed_or_rng=SEED)  # warm outside the timer

        t0 = time.perf_counter()
        n = 0
        for bg in fig13_joint_power.DEFAULT_BACKGROUNDS:
            for level, gov in [(lvl, "eprons-server") for lvl in AGGREGATION_LEVELS] + [
                (0, "no-pm")
            ]:
                try:
                    cons = _cached_consolidation(
                        arity=4, scheme="aggregation", level=level,
                        background=bg, traffic_seed=SEED,
                    )
                except Exception:
                    continue  # infeasible group — the drivers skip these too
                traffic = None
                for L_ms in fig13_joint_power.DEFAULT_CONSTRAINTS_MS:
                    w = workload_for(4, L_ms)
                    if traffic is None:
                        traffic = w.traffic(bg, seed_or_rng=SEED)
                    try:
                        evaluate_operating_point(
                            w, traffic, cons, 0.3,
                            governor_factory(gov, w), params=FINE_PARAMS,
                        )
                        n += 1
                    except Exception:
                        pass
        return time.perf_counter() - t0, n


def dispatch_counts() -> dict:
    """Scalar tasks vs fused dispatch units for the full fig13 grid —
    the structural IPC reduction, independent of machine timing."""
    import repro.exec.ops  # noqa: F401 — populates the batchable registry

    tasks = fig13_joint_power.build_tasks(seed=SEED)
    units = _fuse_round(tasks, list(range(len(tasks))), set())
    return {
        "fig13_tasks": len(tasks),
        "fig13_dispatches_fused": len(units),
        "dispatch_reduction": len(tasks) / len(units),
    }


def measure_worker_warmup() -> dict:
    """Per-worker artifact readiness: rebuild-from-spec vs shm attach,
    each in a fresh subprocess with imports preloaded (forked pool
    workers inherit imports, so import time is excluded)."""
    import os
    import pickle
    import subprocess
    import sys
    import tempfile

    from repro.exec.ops import publish_joint_artifacts

    rebuild_code = (
        "import time\n"
        "from repro.exec.ops import workload_for\n"
        "from repro.netfast.index import topology_index\n"
        "from repro.simfast.tables import shared_table_engine\n"
        "from repro.server.dvfs import XEON_LADDER\n"
        "t0 = time.perf_counter()\n"
        "wl = workload_for(4)\n"
        "idx = topology_index(wl.topology)\n"
        "for bg in (0.01, 0.2, 0.5):\n"
        "    for f in wl.traffic(bg, seed_or_rng=1):\n"
        "        idx.path_set(f.src, f.dst)\n"
        "eng = shared_table_engine(wl.service_model, XEON_LADDER)\n"
        "eng.stack(None, 32)\n"
        "print(time.perf_counter() - t0)\n"
    )
    attach_code = (
        "import pickle, sys, time\n"
        "from repro.exec.shm import attach_manifests\n"
        "import repro.netfast.index, repro.simfast.tables\n"
        "with open(sys.argv[1], 'rb') as fh:\n"
        "    manifests = pickle.load(fh)\n"
        "t0 = time.perf_counter()\n"
        "n = attach_manifests(manifests)\n"
        "assert n >= 2, f'only {n} manifests attached'\n"
        "print(time.perf_counter() - t0)\n"
    )

    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")

    def timed(code, *args):
        out = subprocess.run(
            [sys.executable, "-c", code, *args],
            capture_output=True, text=True, env=env,
        )
        if out.returncode != 0:
            raise RuntimeError(f"warmup probe failed: {out.stderr}")
        return float(out.stdout.strip().splitlines()[-1])

    manifests = publish_joint_artifacts(
        4, fig13_joint_power.DEFAULT_BACKGROUNDS, traffic_seed=SEED
    )
    with tempfile.NamedTemporaryFile(suffix=".pkl", delete=False) as fh:
        pickle.dump(manifests, fh)
        mpath = fh.name
    try:
        rebuild_s = min(timed(rebuild_code) for _ in range(3))
        attach_s = min(timed(attach_code, mpath) for _ in range(3))
    finally:
        os.unlink(mpath)
    return {"rebuild_s": rebuild_s, "attach_s": attach_s}


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=JOBS)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: reduced grids + durations"
    )
    parser.add_argument("--out", default="BENCH_joint.json")
    args = parser.parse_args(argv)

    grid_rows = grids(args.quick)

    # Phase 1: every reference run, while this process is still cold —
    # a fabric prewarm would otherwise leak warm registries into the
    # reference workers through fork.
    reference: dict[tuple, tuple] = {}
    for name, grid, run_fn, spec in grid_rows:
        result, elapsed = run_mode(run_fn, spec, REFERENCE_CTX, args.jobs)
        reference[(name, grid)] = (rows_digest(result), len(result.rows), elapsed)
        print(f"{name}/{grid}: reference {elapsed:7.2f}s  ({len(result.rows)} rows)")

    fabric_metrics = dispatch_counts()

    # Phase 2: fabric runs (the drivers publish artifacts themselves;
    # we time an explicit prewarm and fold it into the fabric total).
    rows = []
    fabric_totals: dict[tuple, float] = {}
    try:
        for name, grid, run_fn, spec in grid_rows:
            prewarm_s = measure_prewarm(name, spec)
            result, run_s = run_mode(run_fn, spec, FABRIC_CTX, args.jobs)
            fabric_s = prewarm_s + run_s
            digest, n_rows, ref_s = reference[(name, grid)]
            fabric_digest = rows_digest(result)
            if fabric_digest != digest:
                raise AssertionError(
                    f"{name}/{grid}: fabric rows diverged from the reference "
                    f"mode ({fabric_digest[:16]} != {digest[:16]}) — the "
                    "fabric must be bit-identical"
                )
            row = {
                "experiment": name,
                "grid": grid,
                "n_rows": n_rows,
                "reference_s": ref_s,
                "fabric_s": fabric_s,
                "prewarm_s": prewarm_s,
                "speedup": ref_s / fabric_s,
                "rows_digest": digest,
                "bit_identical": True,
            }
            print(
                f"{name}/{grid}: fabric    {fabric_s:7.2f}s  "
                f"(prewarm {prewarm_s:.2f}s, speedup {row['speedup']:5.1f}x, "
                f"digest ok)"
            )
            rows.append(row)
            fabric_totals[(name, grid)] = fabric_s

        # Phase 2.5: fabric + lockstep multipoint DES.  Same fused
        # dispatch, but each fused batch hands its whole constraint
        # grid to one run_multipoint_simulation pass instead of a
        # per-point tabulated loop — this is the DES-side reduction on
        # top of the fabric's dispatch-side one, so it is compared
        # against the fabric mode (both warm, identical overheads).
        for name, grid, run_fn, spec in grid_rows:
            mp_spec = dict(spec)
            if "params" in mp_spec:
                mp_spec["params"] = dataclasses.replace(
                    mp_spec["params"], server_engine="multipoint"
                )
            else:
                mp_spec["server_engine"] = "multipoint"
            prewarm_s = measure_prewarm(name, spec)
            result, run_s = run_mode(run_fn, mp_spec, FABRIC_CTX, args.jobs)
            mp_s = prewarm_s + run_s
            digest, n_rows, ref_s = reference[(name, grid)]
            mp_digest = rows_digest(result)
            if mp_digest != digest:
                raise AssertionError(
                    f"{name}/{grid}: multipoint rows diverged from the "
                    f"reference mode ({mp_digest[:16]} != {digest[:16]}) — "
                    "the lockstep engine must be bit-identical"
                )
            fabric_s = fabric_totals[(name, grid)]
            row = {
                "experiment": name,
                "grid": grid,
                "engine": "multipoint",
                "n_rows": n_rows,
                "reference_s": ref_s,
                "fabric_s": fabric_s,
                "multipoint_s": mp_s,
                "prewarm_s": prewarm_s,
                "speedup_vs_reference": ref_s / mp_s,
                "des_speedup_vs_fabric": fabric_s / mp_s,
                "rows_digest": digest,
                "bit_identical": True,
            }
            print(
                f"{name}/{grid}: multipoint{mp_s:7.2f}s  "
                f"(vs fabric {row['des_speedup_vs_fabric']:.2f}x, "
                f"vs reference {row['speedup_vs_reference']:.2f}x, digest ok)"
            )
            rows.append(row)

        # Phase 3 (strictly after every timed run — measuring the floor
        # inline warms the parent's in-process memo, and forked workers
        # would inherit it and corrupt the fabric timings):
        if not args.quick:
            floor_s, floor_n = measure_des_floor()
            fabric_metrics["fig13_fine_grain_des_floor_s"] = floor_s
            fabric_metrics["fig13_fine_grain_des_floor_points"] = floor_n
            warmup = measure_worker_warmup()
            fabric_metrics["worker_warmup"] = warmup
            print(
                f"structural: {fabric_metrics['fig13_tasks']} tasks -> "
                f"{fabric_metrics['fig13_dispatches_fused']} fused dispatches; "
                f"DES floor {floor_s:.2f}s/{floor_n} sims; "
                f"worker warmup rebuild {warmup['rebuild_s'] * 1e3:.1f}ms vs "
                f"attach {warmup['attach_s'] * 1e3:.1f}ms"
            )
            for row in rows:
                if "engine" in row:
                    continue  # floor split applies to the fabric-mode row
                if row["experiment"] == "fig13" and row["grid"] == "fine-grain":
                    row["des_floor_s"] = floor_s
                    row["overhead_reference_s"] = max(0.0, row["reference_s"] - floor_s)
                    row["overhead_fabric_s"] = max(1e-9, row["fabric_s"] - floor_s)
                    row["overhead_speedup"] = (
                        row["overhead_reference_s"] / row["overhead_fabric_s"]
                    )
    finally:
        shutdown_shared_store()

    payload = {
        "benchmark": "bench_joint",
        "jobs": args.jobs,
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "fabric_metrics": fabric_metrics,
        "results": rows,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if not args.quick:  # tiny smoke grids can't amortize the dedup
        for row in rows:
            if "speedup" in row and row["speedup"] < 5.0:
                print(
                    f"NOTE: {row['experiment']}/{row['grid']} wall-clock "
                    f"speedup {row['speedup']:.1f}x < 5x — the sweep is "
                    "DES-bound at this grid (see des_floor_s); the fabric "
                    "can only remove dispatch/rebuild/solve overhead"
                )


if __name__ == "__main__":
    main()
