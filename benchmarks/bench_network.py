"""Micro-benchmarks for the indexed flow-path engine.

Times the three operations dominating a controller epoch — greedy
consolidation, network-model construction + utilization, and the pooled
query-latency summary — at several fat-tree arities, for both the
``indexed`` fast path and the string-keyed ``reference`` engine, and
emits a machine-readable ``BENCH_network.json``.

Run as a module (the repository root on ``sys.path`` and ``src`` on
``PYTHONPATH``)::

    PYTHONPATH=src python -m benchmarks.bench_network --k 4 8 16

Consolidation is timed twice per engine: cold (first call, which pays
path enumeration / index compilation) and warm (steady state — what the
controller re-runs every epoch).  Per-query demand is sized so the
aggregator's access-link fan-in stays routable at every benchmarked
arity; the point is engine throughput, not the paper's figures.
"""

from __future__ import annotations

import argparse
import json
import platform
import time

import numpy as np

from repro.consolidation.heuristic import GreedyConsolidator
from repro.netsim.network import NetworkModel
from repro.rng import ensure_rng
from repro.stats import LatencySummary
from repro.topology.fattree import FatTree
from repro.workloads.search import SearchWorkload

ENGINES = ("reference", "indexed")

#: Per-query demand (bit/s) keeping (n_hosts - 1) reply flows + 20 %
#: background under the 950 Mbps usable access-link capacity.
QUERY_DEMAND_BPS = {4: 10e6, 6: 10e6, 8: 4e6, 10: 2e6, 12: 1e6, 14: 7e5, 16: 5e5}

SCALE_FACTOR = 2.0
BACKGROUND_UTILIZATION = 0.2
SEED = 1


def _time(fn, repeats: int = 1) -> tuple[float, object]:
    """Best-of-``repeats`` wall time (and last result) of ``fn()``."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def legacy_query_latency_summary(model, n_per_flow, seed_or_rng=None) -> LatencySummary:
    """The pre-PR pooled summary: one per-flow, per-hop sampling loop.

    ``sample_flow_latency`` still runs the original sequential stream,
    so this reproduces the old ``query_latency_summary`` exactly — it is
    the honest "before" for the latency-summary row.
    """
    rng = ensure_rng(seed_or_rng)
    pools = [
        model.sample_flow_latency(f.flow_id, n_per_flow, rng)
        for f in model.traffic.latency_sensitive
    ]
    return LatencySummary.from_samples(np.concatenate(pools))


def bench_arity(k: int, engines, n_per_flow: int) -> dict:
    ft = FatTree(k)
    demand = QUERY_DEMAND_BPS.get(k, 5e5)
    traffic = SearchWorkload(ft, query_demand_bps=demand).traffic(
        BACKGROUND_UTILIZATION, seed_or_rng=SEED
    )
    row: dict = {
        "k": k,
        "n_hosts": ft.n_hosts,
        "n_flows": len(traffic),
        "query_demand_bps": demand,
        "scale_factor": SCALE_FACTOR,
        "engines": {},
    }
    summaries = {}
    for engine in engines:
        cons = GreedyConsolidator(ft, engine=engine)
        # Cold = first call; it pays path enumeration / index build and
        # cannot be repeated, so it is the one single-shot measurement.
        t_cold, res = _time(lambda: cons.consolidate(traffic, SCALE_FACTOR))
        t_warm, res = _time(lambda: cons.consolidate(traffic, SCALE_FACTOR), repeats=3)
        t_model, model = _time(
            lambda: NetworkModel(ft, traffic, res.routing, engine=engine), repeats=3
        )
        t_util, _ = _time(
            lambda: (model.max_utilization(), model.link_utilizations), repeats=3
        )
        if engine == "reference":
            # Time the pre-PR per-flow sampling loop — the "before".
            t_lat, summary = _time(
                lambda: legacy_query_latency_summary(model, n_per_flow, seed_or_rng=SEED),
                repeats=3,
            )
            latency_impl = "per-flow loop (pre-PR)"
            summaries[engine] = model.query_latency_summary(n_per_flow, seed_or_rng=SEED)
        else:
            t_lat, summary = _time(
                lambda: model.query_latency_summary(n_per_flow, seed_or_rng=SEED),
                repeats=3,
            )
            latency_impl = "grouped-by-utilization"
            summaries[engine] = summary
        row["engines"][engine] = {
            "consolidate_cold_s": t_cold,
            "consolidate_warm_s": t_warm,
            "model_build_s": t_model,
            "utilization_s": t_util,
            "latency_summary_s": t_lat,
            "latency_impl": latency_impl,
            "consolidate_evaluate_s": t_warm + t_model + t_util + t_lat,
            "flows_per_s_warm": len(traffic) / t_warm,
            "p99_ms": summary.p99 * 1e3,
        }
    if len(summaries) == 2 and summaries["reference"] != summaries["indexed"]:
        raise AssertionError(f"k={k}: engines disagree on the latency summary")
    if all(e in row["engines"] for e in ENGINES):
        ref, idx = row["engines"]["reference"], row["engines"]["indexed"]
        row["speedups"] = {
            "consolidate_cold": ref["consolidate_cold_s"] / idx["consolidate_cold_s"],
            "consolidate_warm": ref["consolidate_warm_s"] / idx["consolidate_warm_s"],
            "latency_summary": ref["latency_summary_s"] / idx["latency_summary_s"],
            "consolidate_evaluate": ref["consolidate_evaluate_s"]
            / idx["consolidate_evaluate_s"],
        }
    return row


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--k", type=int, nargs="+", default=[4, 8, 16])
    parser.add_argument("--engines", nargs="+", default=list(ENGINES), choices=ENGINES)
    parser.add_argument("--n-per-flow", type=int, default=500)
    parser.add_argument("--out", default="BENCH_network.json")
    args = parser.parse_args(argv)

    results = []
    for k in args.k:
        row = bench_arity(k, args.engines, args.n_per_flow)
        results.append(row)
        print(f"k={k} ({row['n_flows']} flows):")
        for engine, r in row["engines"].items():
            print(
                f"  {engine:9s} cold={r['consolidate_cold_s']:.3f}s "
                f"warm={r['consolidate_warm_s']:.3f}s "
                f"latency={r['latency_summary_s']:.3f}s "
                f"total={r['consolidate_evaluate_s']:.3f}s p99={r['p99_ms']:.3f}ms"
            )
        if "speedups" in row:
            s = row["speedups"]
            print(
                f"  speedup   cold={s['consolidate_cold']:.1f}x "
                f"warm={s['consolidate_warm']:.1f}x "
                f"latency={s['latency_summary']:.1f}x "
                f"consolidate+evaluate={s['consolidate_evaluate']:.1f}x"
            )

    payload = {
        "benchmark": "bench_network",
        "n_per_flow": args.n_per_flow,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
