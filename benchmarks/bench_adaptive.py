"""Benchmark: adaptive joint control on the adversarial pack.

Replays adversarial scenarios through the ``adaptive-run`` exec op for
every fixed grid arm (guardrail off), the guardrail-only configuration,
and the adaptive controllers (joint hysteresis, contextual bandit), and
reports per-policy wall time, total cost, SLA violations and cumulative
regret against the per-regime oracle recovered from the fixed arms.

Also verifies two determinism contracts on the hysteresis replay:

* **jobs-invariance** — the sweep run serially and with a worker pool
  must produce bit-identical records (scenarios are rebuilt from
  ``(name, seed)`` inside each worker; nothing non-picklable crosses
  the process boundary);
* **journal resume** — re-running the sweep against its own journal
  with ``resume=True`` serves every outcome from the journal and the
  served records are bit-identical to the live run.

Run as a module (repository root on ``sys.path``, ``src`` on
``PYTHONPATH``)::

    PYTHONPATH=src python -m benchmarks.bench_adaptive
    PYTHONPATH=src python -m benchmarks.bench_adaptive --quick  # CI smoke

Emits ``BENCH_adaptive.json``.  Targets: on every benchmarked scenario
the hysteresis controller's cumulative regret stays at or below the
worst fixed-K baseline's (it is the point of the adaptive loop that it
should track the best arm, not the worst); ``--quick`` covers
flash-crowd + compound at k=4.
"""

from __future__ import annotations

import argparse
import json
import platform
import tempfile
import time
from pathlib import Path

from repro.control.adaptive import default_operating_grid, oracle_costs, regret_series
from repro.exec import ExecContext, SweepTask, run_sweep, use_context
from repro.workloads.adversarial import ADVERSARIAL_SCENARIOS

SEED = 0
SLA_PENALTY_J = 4e5
ARITY = 4


def scenario_tasks(scenario: str, n_epochs: int | None):
    """The fixed-arm + guardrail-only + adaptive task list for one scenario."""
    grid = default_operating_grid()
    common = dict(
        scenario=scenario,
        arity=ARITY,
        n_epochs=n_epochs,
        scenario_seed=SEED,
        seed=SEED,
        sla_penalty_j=SLA_PENALTY_J,
    )
    tasks = [
        SweepTask.make(
            "adaptive-run",
            tag=f"fixed-{p.label}",
            policy="fixed",
            fixed_k=p.k,
            fixed_governor=p.governor,
            fixed_inflation=p.staleness_inflation,
            guardrail_on=False,
            **common,
        )
        for p in grid
    ]
    top = grid[-1]
    tasks.append(
        SweepTask.make(
            "adaptive-run",
            tag="guardrail-only",
            policy="fixed",
            fixed_k=top.k,
            fixed_governor=top.governor,
            fixed_inflation=top.staleness_inflation,
            guardrail_on=True,
            **common,
        )
    )
    for policy in ("hysteresis", "bandit"):
        tasks.append(
            SweepTask.make("adaptive-run", tag=policy, policy=policy, **common)
        )
    return tasks


def bench_scenario(scenario: str, n_epochs: int | None, ctx: ExecContext) -> dict:
    tasks = scenario_tasks(scenario, n_epochs)
    t0 = time.perf_counter()
    with use_context(ctx):
        outcomes = run_sweep(tasks)
    wall_s = time.perf_counter() - t0
    records = {o.task.tag: o.unwrap() for o in outcomes}

    arm_costs = {
        tag: rec["costs_j"] for tag, rec in records.items() if tag.startswith("fixed-")
    }
    regimes = tuple(next(iter(records.values()))["regimes"])
    oracle, choice = oracle_costs(arm_costs, regimes)
    rows = []
    for tag, rec in sorted(records.items()):
        _, regret = regret_series(rec["costs_j"], oracle)
        rows.append(
            {
                "policy": tag,
                "epochs": rec["epochs"],
                "violations": rec["violation_epochs"],
                "total_energy_j": rec["total_energy_j"],
                "total_cost_j": rec["total_cost_j"],
                "regret_j": regret,
                "adaptive_applied": rec["adaptive_applied"],
                "adaptive_deferred": rec["adaptive_deferred"],
            }
        )
    worst_fixed = max(r["regret_j"] for r in rows if r["policy"].startswith("fixed-"))
    hyst = next(r for r in rows if r["policy"] == "hysteresis")
    if hyst["regret_j"] > worst_fixed:
        raise AssertionError(
            f"{scenario}: hysteresis cumulative regret {hyst['regret_j']:.3e} J "
            f"exceeds the worst fixed-K baseline's {worst_fixed:.3e} J"
        )
    print(
        f"  {scenario}: {len(tasks)} replays in {wall_s:5.1f}s  "
        f"hysteresis regret={hyst['regret_j'] / 1e6:6.3f}MJ "
        f"worst-fixed={worst_fixed / 1e6:6.3f}MJ "
        f"violations={hyst['violations']}"
    )
    return {
        "scenario": scenario,
        "wall_s": wall_s,
        "oracle": {str(k): v for k, v in sorted(choice.items())},
        "worst_fixed_regret_j": worst_fixed,
        "rows": rows,
    }


def check_determinism(scenario: str, n_epochs: int | None, jobs: int) -> dict:
    """Jobs-invariance + journal-resume contracts on the hysteresis replay."""
    tasks = scenario_tasks(scenario, n_epochs)
    with tempfile.TemporaryDirectory() as tmp:
        journal = str(Path(tmp) / "adaptive.journal")
        with use_context(ExecContext(jobs=1, cache=False)):
            serial = [o.unwrap() for o in run_sweep(tasks, journal_path=journal)]
        t0 = time.perf_counter()
        with use_context(ExecContext(jobs=jobs, cache=False)):
            pooled = [o.unwrap() for o in run_sweep(tasks)]
        pooled_s = time.perf_counter() - t0
        if serial != pooled:
            raise AssertionError(
                f"{scenario}: replay records differ between jobs=1 and jobs={jobs}"
            )
        with use_context(ExecContext(jobs=1, cache=False)):
            resumed = [
                o.unwrap()
                for o in run_sweep(tasks, journal_path=journal, resume=True)
            ]
        if serial != resumed:
            raise AssertionError(
                f"{scenario}: journal-resumed records differ from the live run"
            )
    print(
        f"  {scenario}: jobs=1 == jobs={jobs} == journal-resume "
        f"({len(tasks)} replays, pooled {pooled_s:.1f}s)"
    )
    return {"scenario": scenario, "jobs": jobs, "tasks": len(tasks), "ok": True}


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenarios", nargs="+", default=list(ADVERSARIAL_SCENARIOS)
    )
    parser.add_argument(
        "--epochs", type=int, default=None,
        help="override scenario epoch count (default: each builder's full length)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="worker-pool size for the jobs-invariance check",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: flash-crowd + compound only, 16 epochs",
    )
    parser.add_argument("--out", default="BENCH_adaptive.json")
    args = parser.parse_args(argv)
    if args.quick:
        args.scenarios = ["flash-crowd", "compound"]
        args.epochs = args.epochs or 16

    ctx = ExecContext(jobs=1, cache=False)
    print(f"adaptive replays (k={ARITY}, seed={SEED}):")
    results = [bench_scenario(s, args.epochs, ctx) for s in args.scenarios]

    print("determinism contracts:")
    determinism = [check_determinism(args.scenarios[0], args.epochs, args.jobs)]

    payload = {
        "benchmark": "bench_adaptive",
        "arity": ARITY,
        "seed": SEED,
        "sla_penalty_j": SLA_PENALTY_J,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
        "determinism": determinism,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
