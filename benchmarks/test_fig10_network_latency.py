"""Fig. 10 benchmark — query latency vs aggregation and background."""

from conftest import run_once, show

from repro.experiments import fig10_network_latency


def test_fig10_network_latency(benchmark):
    result = run_once(benchmark, fig10_network_latency.run, n_per_flow=1000)
    show(result)

    # Index rows by (background, level).
    table = {(row[0], row[1]): row for row in result.rows}

    # At 20% background the 99th percentile inflates dramatically from
    # aggregation 0 to aggregation 3 (paper: 5.64 ms -> 25.74 ms).
    p99_a0 = table[(20.0, 0)][4]
    p99_a3 = table[(20.0, 3)][4]
    assert p99_a3 > 5 * p99_a0
    assert p99_a3 > 5.0  # lands in the paper's 10s-of-ms regime

    # The 95th percentile rises with aggregation depth at every
    # background level (Fig. 10b).  Adjacent levels can jitter within
    # sampling noise, so the check is endpoint-to-endpoint: the deepest
    # available aggregation never beats the full topology.
    backgrounds = sorted({row[0] for row in result.rows})
    for bg in backgrounds:
        tails = [table[(bg, lvl)][3] for lvl in (0, 1, 2, 3) if (bg, lvl) in table]
        assert tails[-1] >= tails[0] * 0.9, (
            f"p95 not increasing with aggregation at bg={bg}: {tails}"
        )

    benchmark.extra_info["p99_ms_agg0_bg20"] = round(p99_a0, 2)
    benchmark.extra_info["p99_ms_agg3_bg20"] = round(p99_a3, 2)
