"""Fig. 13 benchmark — joint power across constraint x aggregation x
background, including the "turn a switch on to save power" effect."""

from conftest import run_once, show

from repro.core import JointSimParams
from repro.experiments import fig13_joint_power


def test_fig13_joint_power(benchmark):
    result = run_once(
        benchmark,
        fig13_joint_power.run,
        backgrounds=(0.01, 0.2, 0.5),
        constraints_ms=(19.0, 25.0, 31.0, 40.0),
        params=JointSimParams(sim_cores=1, duration_s=10.0, warmup_s=2.0),
    )
    show(result)

    rows = {(r[0], r[1], r[2]): r for r in result.rows}

    def total(bg, c, scheme):
        return rows[(bg, c, scheme)][3]

    def sla(bg, c, scheme):
        return rows[(bg, c, scheme)][7]

    # (a) Light background: every aggregation level is present and
    # deeper aggregation is cheaper; agg 3 wins.
    for c in (25.0, 40.0):
        totals = [total(1.0, c, f"aggregation-{l}") for l in (0, 1, 2, 3)]
        assert totals == sorted(totals, reverse=True)

    # Looser constraints cost less power (longer server slack).
    assert total(1.0, 40.0, "aggregation-3") < total(1.0, 19.0, "aggregation-3")

    # (b) Medium background: aggregation 3 violates the SLA at the
    # tightest constraint while aggregation 2 holds it — turning
    # switches ON is the feasible optimum (the paper's crossover).
    assert not sla(20.0, 19.0, "aggregation-3")
    assert sla(20.0, 19.0, "aggregation-2")

    # (c) Heavy background: deep aggregations are not even routable.
    present_50 = {r[2] for r in result.rows if r[0] == 50.0}
    assert "aggregation-0" in present_50
    assert "aggregation-3" not in present_50

    # Every managed configuration beats no power management.
    for bg in (1.0, 20.0, 50.0):
        assert total(bg, 31.0, "aggregation-0") < total(bg, 31.0, "no-pm")

    benchmark.extra_info["total_w_bg1_agg3_40ms"] = round(total(1.0, 40.0, "aggregation-3"))
    benchmark.extra_info["total_w_bg1_nopm"] = round(total(1.0, 40.0, "no-pm"))
