"""Micro-benchmarks for the tabulated server-sim fast path.

Times fig12-style server-simulation points — a multi-core server under
a VP governor at a given (utilization, latency constraint) — for both
the ``tabulated`` (:mod:`repro.simfast`) and ``reference`` governor
engines, and emits a machine-readable ``BENCH_server.json`` with wall
times, events/s, decisions/s and the tabulated/reference speedup.

Run as a module (the repository root on ``sys.path`` and ``src`` on
``PYTHONPATH``)::

    PYTHONPATH=src python -m benchmarks.bench_server --duration 60

Each engine is timed cold (first run in the process — the tabulated
engine pays VP-table construction, which subsequent same-process runs
share through :func:`repro.simfast.shared_table_engine`) and warm
(best of ``--repeats`` further runs).  Both engines must produce
bit-identical :class:`~repro.sim.runner.ServerSimResult` outputs on
every point — the benchmark asserts it, the equivalence test suite
enforces it more broadly.
"""

from __future__ import annotations

import argparse
import json
import platform
import time

from repro.policies import (
    EpronsServerGovernor,
    RubikGovernor,
    RubikPlusGovernor,
)
from repro.server.dvfs import XEON_LADDER
from repro.server.service import default_service_model
from repro.sim.runner import ServerSimConfig, run_server_simulation
from repro.simfast import clear_shared_engines

ENGINES = ("reference", "tabulated")

GOVERNORS = {
    "rubik": RubikGovernor,
    "rubik+": RubikPlusGovernor,
    "eprons-server": EpronsServerGovernor,
}

#: Fig. 12-style operating points: (governor, utilization, constraint).
DEFAULT_POINTS = (
    ("rubik", 0.3, 30e-3),
    ("eprons-server", 0.3, 30e-3),
    ("eprons-server", 0.5, 30e-3),
)


def _run_point(governor_cls, service_model, config, engine):
    """One instrumented run: (result, n_events, n_decisions)."""
    stats: dict = {}
    result = run_server_simulation(
        service_model,
        lambda: governor_cls(service_model, XEON_LADDER),
        config,
        engine=engine,
        stats_out=stats,
    )
    return result, stats["n_events"], stats["n_decisions"]


def bench_point(name, utilization, constraint_s, engines, duration_s, n_cores, seed, repeats):
    service_model = default_service_model()
    config = ServerSimConfig(
        utilization=utilization,
        latency_constraint_s=constraint_s,
        n_cores=n_cores,
        duration_s=duration_s,
        warmup_s=min(duration_s / 3.0, 20.0),
        seed=seed,
    )
    governor_cls = GOVERNORS[name]
    row = {
        "governor": name,
        "utilization": utilization,
        "constraint_ms": constraint_s * 1e3,
        "n_cores": n_cores,
        "duration_s": duration_s,
        "engines": {},
    }
    results = {}
    for engine in engines:
        if engine == "tabulated":
            # Charge the cold run the full table build, as a fresh
            # worker process would pay it.
            clear_shared_engines()
        t0 = time.perf_counter()
        result, n_events, n_decisions = _run_point(
            governor_cls, service_model, config, engine
        )
        t_cold = time.perf_counter() - t0
        t_warm = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            again, n_events, n_decisions = _run_point(
                governor_cls, service_model, config, engine
            )
            t_warm = min(t_warm, time.perf_counter() - t0)
            if again != result:
                raise AssertionError(f"{name}/{engine}: run-to-run mismatch")
        results[engine] = result
        row["engines"][engine] = {
            "cold_s": t_cold,
            "warm_s": t_warm,
            "n_events": n_events,
            "n_decisions": n_decisions,
            "events_per_s_warm": n_events / t_warm,
            "decisions_per_s_warm": n_decisions / t_warm,
            "cpu_power_w": result.cpu_power_watts,
            "p95_ms": result.total_latency.p95 * 1e3,
        }
    if all(e in results for e in ENGINES):
        if results["reference"] != results["tabulated"]:
            raise AssertionError(f"{name}: engines disagree on the simulation result")
        ref, tab = row["engines"]["reference"], row["engines"]["tabulated"]
        row["speedups"] = {
            "cold": ref["cold_s"] / tab["cold_s"],
            "warm": ref["warm_s"] / tab["warm_s"],
        }
    return row


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--engines", nargs="+", default=list(ENGINES), choices=ENGINES)
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument("--n-cores", type=int, default=2)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--quick", action="store_true",
        help="single short point (CI smoke): eprons-server only",
    )
    parser.add_argument("--out", default="BENCH_server.json")
    args = parser.parse_args(argv)

    points = DEFAULT_POINTS[1:2] if args.quick else DEFAULT_POINTS
    duration = min(args.duration, 12.0) if args.quick else args.duration

    results = []
    for name, utilization, constraint_s in points:
        row = bench_point(
            name, utilization, constraint_s, args.engines,
            duration, args.n_cores, args.seed, args.repeats,
        )
        results.append(row)
        print(f"{name} u={utilization:.0%} L={constraint_s * 1e3:.0f}ms:")
        for engine, r in row["engines"].items():
            print(
                f"  {engine:10s} cold={r['cold_s']:.2f}s warm={r['warm_s']:.2f}s "
                f"events/s={r['events_per_s_warm']:,.0f} "
                f"decisions/s={r['decisions_per_s_warm']:,.0f}"
            )
        if "speedups" in row:
            s = row["speedups"]
            print(f"  speedup    cold={s['cold']:.1f}x warm={s['warm']:.1f}x")

    payload = {
        "benchmark": "bench_server",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
