"""Micro-benchmarks for the tabulated server-sim fast path.

Times fig12-style server-simulation points — a multi-core server under
a VP governor at a given (utilization, latency constraint) — for both
the ``tabulated`` (:mod:`repro.simfast`) and ``reference`` governor
engines, and emits a machine-readable ``BENCH_server.json`` with wall
times, events/s, decisions/s and the tabulated/reference speedup.

It also benchmarks the **lockstep multipoint engine** on a whole
constraint grid: one :func:`~repro.simfast.run_multipoint_simulation`
pass over ``--grid-points`` constraints versus the same grid as
per-point ``engine="tabulated"`` runs, asserting bit-identical results
per point.  The grid row records an honest Amdahl split:
``des_floor_s`` is the slowest *single-point* scalar run — the one
full event-stream pass the lockstep engine can never go below — so
``amdahl_max_speedup = scalar_warm / des_floor_s`` bounds what any
grid fusion could achieve at that window.

Run as a module (the repository root on ``sys.path`` and ``src`` on
``PYTHONPATH``)::

    PYTHONPATH=src python -m benchmarks.bench_server --duration 60
    PYTHONPATH=src python -m benchmarks.bench_server --quick --engine multipoint

Each engine is timed cold (first run in the process — the tabulated
engine pays VP-table construction, which subsequent same-process runs
share through :func:`repro.simfast.shared_table_engine`) and warm
(best of ``--repeats`` further runs).  Both engines must produce
bit-identical :class:`~repro.sim.runner.ServerSimResult` outputs on
every point — the benchmark asserts it, the equivalence test suite
enforces it more broadly.
"""

from __future__ import annotations

import argparse
import json
import platform
import time

import numpy as np

from repro.policies import (
    EpronsServerGovernor,
    RubikGovernor,
    RubikPlusGovernor,
)
from repro.server.dvfs import XEON_LADDER
from repro.server.service import default_service_model
from repro.sim.runner import ServerSimConfig, run_server_simulation
from repro.simfast import (
    MultipointPoint,
    clear_shared_engines,
    run_multipoint_simulation,
)

ENGINES = ("reference", "tabulated")

#: The multipoint grid sweeps the fig. 12(b) constraint band.
GRID_CONSTRAINT_RANGE_MS = (18.0, 40.0)

GOVERNORS = {
    "rubik": RubikGovernor,
    "rubik+": RubikPlusGovernor,
    "eprons-server": EpronsServerGovernor,
}

#: Fig. 12-style operating points: (governor, utilization, constraint).
DEFAULT_POINTS = (
    ("rubik", 0.3, 30e-3),
    ("eprons-server", 0.3, 30e-3),
    ("eprons-server", 0.5, 30e-3),
)


def _run_point(governor_cls, service_model, config, engine):
    """One instrumented run: (result, n_events, n_decisions)."""
    stats: dict = {}
    result = run_server_simulation(
        service_model,
        lambda: governor_cls(service_model, XEON_LADDER),
        config,
        engine=engine,
        stats_out=stats,
    )
    return result, stats["n_events"], stats["n_decisions"]


def bench_point(name, utilization, constraint_s, engines, duration_s, n_cores, seed, repeats):
    service_model = default_service_model()
    config = ServerSimConfig(
        utilization=utilization,
        latency_constraint_s=constraint_s,
        n_cores=n_cores,
        duration_s=duration_s,
        warmup_s=min(duration_s / 3.0, 20.0),
        seed=seed,
    )
    governor_cls = GOVERNORS[name]
    row = {
        "governor": name,
        "utilization": utilization,
        "constraint_ms": constraint_s * 1e3,
        "n_cores": n_cores,
        "duration_s": duration_s,
        "engines": {},
    }
    results = {}
    for engine in engines:
        if engine == "tabulated":
            # Charge the cold run the full table build, as a fresh
            # worker process would pay it.
            clear_shared_engines()
        t0 = time.perf_counter()
        result, n_events, n_decisions = _run_point(
            governor_cls, service_model, config, engine
        )
        t_cold = time.perf_counter() - t0
        t_warm = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            again, n_events, n_decisions = _run_point(
                governor_cls, service_model, config, engine
            )
            t_warm = min(t_warm, time.perf_counter() - t0)
            if again != result:
                raise AssertionError(f"{name}/{engine}: run-to-run mismatch")
        results[engine] = result
        row["engines"][engine] = {
            "cold_s": t_cold,
            "warm_s": t_warm,
            "n_events": n_events,
            "n_decisions": n_decisions,
            "events_per_s_warm": n_events / t_warm,
            "decisions_per_s_warm": n_decisions / t_warm,
            "cpu_power_w": result.cpu_power_watts,
            "p95_ms": result.total_latency.p95 * 1e3,
        }
    if all(e in results for e in ENGINES):
        if results["reference"] != results["tabulated"]:
            raise AssertionError(f"{name}: engines disagree on the simulation result")
        ref, tab = row["engines"]["reference"], row["engines"]["tabulated"]
        row["speedups"] = {
            "cold": ref["cold_s"] / tab["cold_s"],
            "warm": ref["warm_s"] / tab["warm_s"],
        }
    return row


def bench_grid(name, utilization, n_points, duration_s, n_cores, seed, repeats):
    """The lockstep grid: one multipoint pass vs per-point scalar runs."""
    service_model = default_service_model()
    governor_cls = GOVERNORS[name]
    lo_ms, hi_ms = GRID_CONSTRAINT_RANGE_MS
    constraints = np.linspace(lo_ms * 1e-3, hi_ms * 1e-3, n_points)
    configs = [
        ServerSimConfig(
            utilization=utilization,
            latency_constraint_s=float(L),
            n_cores=n_cores,
            duration_s=duration_s,
            warmup_s=min(duration_s / 3.0, 20.0),
            seed=seed,
        )
        for L in constraints
    ]

    def factory():
        return governor_cls(service_model, XEON_LADDER)

    points = [
        MultipointPoint(config=cfg, governor_factory=factory) for cfg in configs
    ]

    def scalar_pass():
        timings = []
        grid = []
        for cfg in configs:
            t0 = time.perf_counter()
            grid.append(
                run_server_simulation(service_model, factory, cfg, engine="tabulated")
            )
            timings.append(time.perf_counter() - t0)
        return grid, timings

    clear_shared_engines()
    t0 = time.perf_counter()
    scalar, per_point = scalar_pass()
    scalar_cold = time.perf_counter() - t0
    scalar_warm = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        again, per_point = scalar_pass()
        scalar_warm = min(scalar_warm, time.perf_counter() - t0)
        if again != scalar:
            raise AssertionError(f"{name}/grid: scalar run-to-run mismatch")

    stats: dict = {}
    clear_shared_engines()
    t0 = time.perf_counter()
    fused = run_multipoint_simulation(service_model, points, stats_out=stats)
    mp_cold = time.perf_counter() - t0
    mp_warm = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fused_again = run_multipoint_simulation(service_model, points, stats_out=stats)
        mp_warm = min(mp_warm, time.perf_counter() - t0)
        if fused_again != fused:
            raise AssertionError(f"{name}/grid: multipoint run-to-run mismatch")
    for i, (one, many) in enumerate(zip(scalar, fused)):
        if one != many:
            raise AssertionError(
                f"{name}/grid point {i}: multipoint diverged from tabulated"
            )

    # The lockstep pass must still simulate one full event stream; the
    # slowest single point is its irreducible floor (Amdahl split).
    des_floor_s = max(per_point)
    return {
        "kind": "multipoint-grid",
        "governor": name,
        "utilization": utilization,
        "n_points": n_points,
        "constraint_ms_range": [lo_ms, hi_ms],
        "n_cores": n_cores,
        "duration_s": duration_s,
        "scalar": {"cold_s": scalar_cold, "warm_s": scalar_warm},
        "multipoint": {
            "cold_s": mp_cold,
            "warm_s": mp_warm,
            "n_events": stats["n_events"],
            "n_decisions": stats["n_decisions"],
            "n_forks": stats["n_forks"],
            "n_merges": stats["n_merges"],
            "n_fallback": stats["n_fallback"],
        },
        "speedup": {
            "cold": scalar_cold / mp_cold,
            "warm": scalar_warm / mp_warm,
        },
        "des_floor_s": des_floor_s,
        "amdahl_max_speedup": scalar_warm / des_floor_s,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--engines", nargs="+", default=list(ENGINES), choices=ENGINES)
    parser.add_argument(
        "--engine", choices=ENGINES + ("multipoint",), default=None,
        help="benchmark one engine; 'multipoint' runs only the lockstep "
        "grid benchmark (vs its per-point tabulated baseline)",
    )
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument("--n-cores", type=int, default=2)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--grid-points", type=int, default=32,
        help="constraint-grid size for the multipoint benchmark",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="single short point (CI smoke): eprons-server only",
    )
    parser.add_argument("--out", default="BENCH_server.json")
    args = parser.parse_args(argv)

    points = DEFAULT_POINTS[1:2] if args.quick else DEFAULT_POINTS
    duration = min(args.duration, 12.0) if args.quick else args.duration
    grid_points = min(args.grid_points, 8) if args.quick else args.grid_points
    grid_repeats = 1 if args.quick else max(1, args.repeats - 1)
    engines = [args.engine] if args.engine in ENGINES else args.engines
    grid_only = args.engine == "multipoint"

    results = []
    if not grid_only:
        for name, utilization, constraint_s in points:
            row = bench_point(
                name, utilization, constraint_s, engines,
                duration, args.n_cores, args.seed, args.repeats,
            )
            results.append(row)
            print(f"{name} u={utilization:.0%} L={constraint_s * 1e3:.0f}ms:")
            for engine, r in row["engines"].items():
                print(
                    f"  {engine:10s} cold={r['cold_s']:.2f}s warm={r['warm_s']:.2f}s "
                    f"events/s={r['events_per_s_warm']:,.0f} "
                    f"decisions/s={r['decisions_per_s_warm']:,.0f}"
                )
            if "speedups" in row:
                s = row["speedups"]
                print(f"  speedup    cold={s['cold']:.1f}x warm={s['warm']:.1f}x")

    if grid_only or args.engine is None:
        grid = bench_grid(
            "eprons-server", 0.3, grid_points,
            duration, args.n_cores, args.seed, grid_repeats,
        )
        results.append(grid)
        print(
            f"multipoint grid ({grid['n_points']} constraints, "
            f"{duration:.0f}s windows):"
        )
        print(
            f"  scalar     cold={grid['scalar']['cold_s']:.2f}s "
            f"warm={grid['scalar']['warm_s']:.2f}s"
        )
        mp = grid["multipoint"]
        print(
            f"  multipoint cold={mp['cold_s']:.2f}s warm={mp['warm_s']:.2f}s "
            f"(forks={mp['n_forks']}, merges={mp['n_merges']})"
        )
        print(
            f"  speedup    cold={grid['speedup']['cold']:.2f}x "
            f"warm={grid['speedup']['warm']:.2f}x "
            f"(Amdahl ceiling {grid['amdahl_max_speedup']:.1f}x, "
            f"des_floor={grid['des_floor_s']:.2f}s)"
        )

    payload = {
        "benchmark": "bench_server",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
