"""Fig. 11 benchmark — K trades tail latency against active switches."""

from conftest import run_once, show

from repro.experiments import fig11_k_tradeoff


def test_fig11_k_tradeoff(benchmark):
    result = run_once(benchmark, fig11_k_tradeoff.run, n_per_flow=1000)
    show(result)

    table = {(row[0], row[1]): row for row in result.rows}

    for bg in (20.0, 30.0):
        # (a) tail latency falls as K rises...
        p95_k1 = table[(bg, 1.0)][4]
        p95_k4 = table[(bg, 4.0)][4]
        assert p95_k4 < p95_k1
        # ...and (b) more switches are on.
        assert table[(bg, 4.0)][3] >= table[(bg, 1.0)][3]

    # At 20% background the improvement is substantial (paper: several x).
    assert table[(20.0, 1.0)][4] / table[(20.0, 4.0)][4] > 2.0
    # (c) the frontier: switches-on never decreases in K at any bg.
    for bg in sorted({r[0] for r in result.rows}):
        counts = [table[(bg, k)][3] for k in (1.0, 2.0, 3.0, 4.0)]
        assert counts == sorted(counts)

    benchmark.extra_info["p95_ms_bg20_k1"] = round(table[(20.0, 1.0)][4], 2)
    benchmark.extra_info["p95_ms_bg20_k4"] = round(table[(20.0, 4.0)][4], 2)
    benchmark.extra_info["switches_bg20_k1"] = table[(20.0, 1.0)][3]
    benchmark.extra_info["switches_bg20_k4"] = table[(20.0, 4.0)][3]
