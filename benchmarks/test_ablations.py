"""Ablation benchmarks — the design-choice studies DESIGN.md calls out."""

from conftest import run_once, show

from repro.experiments import ablation_network, ablation_server, ablation_sleep


def test_ablation_server(benchmark):
    result = run_once(
        benchmark, ablation_server.run, utilizations=(0.3,), duration_s=25.0
    )
    show(result)
    power = {row[0]: row[2] for row in result.rows}

    # Each ingredient helps (or at worst is neutral); the oracle bounds
    # everything from below.
    assert power["oracle"] <= power["eprons-server"] + 0.05
    assert power["eprons-server"] <= power["eprons-noreorder"] + 0.05
    assert power["eprons-noreorder"] <= power["rubik+"] + 0.05
    # EPRONS-Server sits close to the clairvoyant bound (within ~10%).
    assert power["eprons-server"] <= power["oracle"] * 1.10

    benchmark.extra_info["cpu_w"] = {g: round(p, 2) for g, p in power.items()}


def test_ablation_network(benchmark):
    result = run_once(benchmark, ablation_network.run, n_per_flow=1200)
    show(result)
    rows = {(r[0], r[1]): r for r in result.rows}

    for bg in (20.0, 30.0):
        base = rows[(bg, "bandwidth-only")]
        aware = rows[(bg, "latency-aware K=4")]
        # Latency-aware consolidation cuts the query tail by multiples
        # at the cost of a few switches.
        assert aware[4] < base[4] / 2
        assert aware[2] >= base[2]
        # Only the latency-aware plan keeps queries within the budget.
        assert aware[6] and not base[6]

    benchmark.extra_info["p95_ms_bg20_baseline"] = round(rows[(20.0, "bandwidth-only")][4], 2)
    benchmark.extra_info["p95_ms_bg20_k4"] = round(rows[(20.0, "latency-aware K=4")][4], 2)


def test_ablation_sleep(benchmark):
    result = run_once(
        benchmark, ablation_sleep.run, utilizations=(0.1, 0.4), duration_s=25.0
    )
    show(result)
    table = {(r[0], r[1]): r for r in result.rows}

    # Sleeping dominates at low load; DVFS dominates at higher load;
    # the hybrid dominates both everywhere; everyone meets the SLA.
    assert table[("powernap", 10.0)][2] < table[("eprons-server", 10.0)][2]
    assert table[("eprons-server", 40.0)][2] < table[("powernap", 40.0)][2]
    for u in (10.0, 40.0):
        hybrid = table[("eprons+sleep", u)][2]
        assert hybrid <= table[("powernap", u)][2] + 0.05
        assert hybrid <= table[("eprons-server", u)][2] + 0.05
    for row in result.rows:
        assert row[4], f"{row[0]} missed SLA at {row[1]}%"

    benchmark.extra_info["hybrid_w_10pct"] = round(table[("eprons+sleep", 10.0)][2], 2)
