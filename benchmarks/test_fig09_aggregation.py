"""Fig. 9 benchmark — the four aggregation policies."""

from conftest import run_once, show

from repro.experiments import fig09_aggregation


def test_fig09_aggregation_policies(benchmark):
    result = run_once(benchmark, fig09_aggregation.run)
    show(result)

    switches = result.column("switches_on")
    network_w = result.column("network_w")
    connected = result.column("hosts_connected")

    # The paper's k=4 active-switch counts, exactly.
    assert switches == [20, 19, 14, 13]
    # Network power strictly decreases with aggregation depth.
    assert network_w == sorted(network_w, reverse=True)
    # No policy ever disconnects servers.
    assert all(connected)

    benchmark.extra_info["switch_counts"] = switches
    benchmark.extra_info["network_watts"] = [round(w) for w in network_w]
