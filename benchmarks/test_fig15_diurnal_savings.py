"""Fig. 15 benchmark — 24-hour power replay and headline savings.

Paper headline: EPRONS saves up to 31.25 % (peak) and 25 % (average) of
the total power budget; TimeTrader averages 8 % with zero DCN saving;
EPRONS's total saving is more than 2x TimeTrader's.
"""

from conftest import run_once, show

from repro.core import JointSimParams
from repro.experiments import fig15_diurnal


def test_fig15_diurnal_savings(benchmark):
    series, summary = run_once(
        benchmark,
        fig15_diurnal.run,
        epoch_minutes=30,
        bg_buckets=(0.1, 0.3, 0.5),
        util_grid=(0.05, 0.2, 0.35, 0.5),
        params=JointSimParams(sim_cores=1, duration_s=6.0, warmup_s=1.0),
        report_every_epochs=4,
    )
    show((series, summary))

    rows = {row[0]: row for row in summary.rows}
    eprons, timetrader = rows["eprons"], rows["timetrader"]

    # EPRONS total saving is more than 2x TimeTrader's (paper Fig. 15b).
    assert eprons[1] > 2 * timetrader[1]
    # EPRONS lands in the paper's savings regime (25% avg / 31.25% peak).
    assert 12.0 < eprons[1] < 35.0
    assert 18.0 < eprons[2] < 40.0
    assert eprons[2] > eprons[1]
    # Only EPRONS saves network power; TimeTrader leaves the DCN on.
    assert eprons[3] > 10.0
    assert abs(timetrader[3]) < 1e-6
    # TimeTrader still saves meaningful *server* power (paper: ~8%).
    assert timetrader[1] > 3.0

    # The time series: every scheme's total stays below no-PM, and the
    # EPRONS network power varies through the day (diurnal DCN power).
    eprons_net = series.column("eprons_network_w")
    assert max(eprons_net) > min(eprons_net)

    benchmark.extra_info["eprons_avg_saving_pct"] = round(eprons[1], 1)
    benchmark.extra_info["eprons_peak_saving_pct"] = round(eprons[2], 1)
    benchmark.extra_info["timetrader_avg_saving_pct"] = round(timetrader[1], 1)
