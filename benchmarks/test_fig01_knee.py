"""Fig. 1 benchmark — the utilization→latency knee."""

from conftest import run_once, show

from repro.experiments import fig01_knee


def test_fig01_knee(benchmark):
    result = run_once(benchmark, fig01_knee.run, n_samples=10_000)
    show(result)

    util = result.column("utilization_pct")
    mean_us = result.column("mean_us")
    by_util = dict(zip(util, mean_us))

    # Low-utilization latency sits in the paper's ~139 us regime.
    assert by_util[20.0] < 250.0
    # Past the knee the latency explodes by two orders of magnitude
    # into the paper's ~12 ms regime.
    knee_val = [m for u, m in zip(util, mean_us) if u >= 89.0][0]
    assert knee_val > 40 * by_util[20.0]
    assert 3_000 < knee_val < 40_000  # 3-40 ms window around the paper's 11.98 ms
    # Monotone increase in utilization.
    assert mean_us == sorted(mean_us)

    benchmark.extra_info["mean_us_at_20pct"] = round(by_util[20.0], 1)
    benchmark.extra_info["mean_us_past_knee"] = round(knee_val, 0)
